// Package core implements the paper's primary contribution: the new
// approach to stable model semantics for normal (possibly disjunctive)
// tuple-generating dependencies, defined via the second-order formula
// SM[D,Σ] (Definition 1) rather than via Skolemization. It provides:
//
//   - enumeration of the stable models SMS(D,Σ) by a chase-with-choices
//     search justified by Lemma 7 (M⁺ = T∞_{Σ,M}(D): every stable model
//     is obtained by "executing" Σ from D using M as an oracle for the
//     negative literals);
//   - the stability check of Proposition 11 (no J with D ⊆ J ⊊ M⁺
//     models the τ_{p▷s}-transformed program), encoded in CNF and
//     decided by internal/sat;
//   - the immediate consequence operator T_{Σ,I} of Section 5.1;
//   - cautious and brave query answering for normal (Boolean)
//     conjunctive queries (SMS-QAns, Sections 3.4 and 7.1).
//
// The key semantic point (Examples 2 and 4) is that an existential head
// variable may be witnessed by any domain element — including a
// constant such as Bob — not only by a fresh null as under
// Skolemization or the operational semantics of Baget et al. The engine
// therefore draws witnesses from the current domain plus the query's
// constants plus fresh nulls (Options.WitnessPolicy = WitnessAnyDomain);
// since NTGDs are constant-free and query answers are invariant under
// isomorphisms fixing the query constants, this restricted pool is
// complete for certain-answer computation. Setting WitnessFreshOnly
// reproduces the operational semantics of Baget et al. [3].
package core

import (
	"context"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ntgd/internal/chase"
	"ntgd/internal/engine"
	"ntgd/internal/logic"
)

// WitnessPolicy selects how existential head variables are witnessed
// during the stable model search.
type WitnessPolicy int

const (
	// WitnessAnyDomain draws witnesses from the current domain, the
	// extra constants, and fresh nulls — the paper's SO semantics.
	WitnessAnyDomain WitnessPolicy = iota
	// WitnessFreshOnly always invents fresh nulls — the operational
	// chase-based semantics of Baget et al. [3], provided for
	// comparison (Example 2 shows it yields unintended answers).
	WitnessFreshOnly
)

func (w WitnessPolicy) String() string {
	if w == WitnessFreshOnly {
		return "fresh-only"
	}
	return "any-domain"
}

// Options configures the stable model search.
type Options struct {
	// MaxAtoms bounds the candidate model size. 0 derives a budget
	// from the oblivious chase of Σ⁺ (sound for weakly-acyclic sets by
	// Proposition 9).
	MaxAtoms int
	// MaxNodes bounds the number of search nodes (0 = 8M).
	MaxNodes int64
	// WitnessPolicy selects the witness pool (see the type).
	WitnessPolicy WitnessPolicy
	// ExtraConstants extends the witness pool, typically with the
	// constants of the query being answered.
	ExtraConstants []logic.Term
	// MaxModels stops enumeration after this many models (0 = all).
	MaxModels int
	// Workers bounds the worker pool of the search: sibling branch
	// subtrees are explored concurrently by up to Workers goroutines,
	// each on its own store snapshot and trigger agenda. 0 defaults to
	// runtime.GOMAXPROCS(0); 1 forces the sequential depth-first
	// search. The canonical stable-model set is identical for every
	// setting (see parallel.go); enumeration order is deterministic
	// only when the effective worker count is 1. Overridable per run
	// via engine.Params.Workers.
	Workers int
	// MaxWallClock bounds each run's wall-clock time (0 = unbounded).
	// It is enforced by the Solver layer (engine.Guard drives the run
	// through the search's cancellation paths via a derived deadline);
	// expiry surfaces as engine.ErrWallClock, which matches ErrBudget
	// under errors.Is, with partial Stats and Exhausted preserved.
	MaxWallClock time.Duration
	// MaxMemory caps a run's retained-allocation watermark, in bytes of
	// interned tuples (0 = unbounded): every fact added on any branch
	// is charged at its packed-tuple size — 4 bytes for the predicate
	// id plus 4 per argument id (see logic.FactStore.TupleBytes) — and
	// every stability-clause literal at the size of its arena slot.
	// Unlike MaxAtoms — a per-branch candidate bound whose overflow
	// only kills the branch — the watermark measures cumulative growth
	// across the whole run, and tripping it stops the run with
	// engine.ErrMemory (partial Stats preserved, Exhausted set).
	MaxMemory int64
	// MaxConcurrentRuns bounds how many enumerations may run
	// concurrently against one compiled Solver (0 = unlimited). It is
	// enforced by the Solver layer through an admission gate: excess
	// runs queue instead of oversubscribing the pool, and a queued run
	// whose context ends is refused with engine.ErrAdmission.
	MaxConcurrentRuns int

	// stabOracle, when non-nil, cross-checks every session-based
	// stability verdict against the full-rebuild oracle
	// (stableAgainstSubsetsNaive) and counts mismatches. Package-private:
	// only the differential tests set it.
	stabOracle *atomic.Int64
}

// Stats reports search effort. It is the engine-uniform report shared
// with the other semantics (see internal/engine).
type Stats = engine.Stats

// Result holds an enumeration outcome (see engine.Result: Exhausted is
// true when a budget was hit or the context was cancelled, in which
// case the enumeration may be incomplete).
type Result = engine.Result

// ErrBudget is reported (alongside partial results) when a budget was
// hit. It is the engine-uniform budget error shared by all semantics.
var ErrBudget = engine.ErrBudget

// Compiled is the SO semantics compiled for one program: rules
// validated, per-rule search metadata precomputed, and chase-derived
// atom budgets cached per witness-pool extension. It implements the
// engine.Engine interface and is safe for concurrent use: enumerations
// share only the immutable compiled artifacts and the mutex-guarded
// budget cache, while all mutable search state — the run, its store
// snapshots layered over the frozen root db, trigger agendas, join-plan
// caches, and stability sessions — is created per call (see enumerate
// and the freeze discipline in parallel.go).
type Compiled struct {
	db    *logic.FactStore
	rules []*logic.Rule
	opt   Options
	// ruleDet[i] reports whether rules[i] fires without branching:
	// single disjunct, no negation, no existential head variables.
	ruleDet []bool
	// ruleVars[i] is the sorted list of positive-body variables of
	// rules[i] — exactly the domain of its trigger homomorphisms — used
	// to build compact trigger keys.
	ruleVars [][]string
	// rulePosPreds[i] lists the distinct positive-body predicates of
	// rules[i]: a delta sweep (agenda refresh or stability-session
	// window) can skip the rule outright when none of them occurs in
	// the window, because every new homomorphism must seed from a
	// window atom matching a positive body atom.
	rulePosPreds [][]string

	mu sync.Mutex
	// budgets caches the chase-derived MaxAtoms budget per canonical
	// extra-constant set, so repeated runs (and repeated queries with
	// the same constants) pay the oblivious-chase probe once.
	budgets map[string]int
}

// Compile validates the rules and precomputes everything the search
// needs that does not depend on the individual run: per-rule
// determinism flags, trigger-key variable orders, and (when
// opt.MaxAtoms is unset) the default chase-derived atom budget.
func Compile(db *logic.FactStore, rules []*logic.Rule, opt Options) (*Compiled, error) {
	for _, r := range rules {
		if err := r.Validate(); err != nil {
			return nil, err
		}
	}
	if opt.MaxNodes <= 0 {
		opt.MaxNodes = 8 << 20
	}
	c := &Compiled{db: db, rules: rules, opt: opt, budgets: make(map[string]int)}
	c.initRules()
	// Budgets are derived lazily by budgetFor on first use and cached
	// per witness-pool extension: queries merge their constants into
	// the extras, so an eager probe here would only duplicate the
	// first query's probe under a different cache key.
	return c, nil
}

// Semantics names the engine ("so", or "operational" under the
// fresh-only witness policy of Baget et al.).
func (c *Compiled) Semantics() string {
	if c.opt.WitnessPolicy == WitnessFreshOnly {
		return "operational"
	}
	return "so"
}

// extrasKey canonicalizes a witness-pool extension for budget caching.
func extrasKey(extras []logic.Term) string {
	if len(extras) == 0 {
		return ""
	}
	keys := make([]string, len(extras))
	for i, c := range extras {
		keys[i] = c.Key()
	}
	sort.Strings(keys)
	return strings.Join(keys, "|")
}

// budgetFor returns the chase-derived MaxAtoms budget for the given
// witness-pool extension, caching per canonical extra-constant set.
func (c *Compiled) budgetFor(ctx context.Context, extras []logic.Term) int {
	key := extrasKey(extras)
	c.mu.Lock()
	b, ok := c.budgets[key]
	c.mu.Unlock()
	if ok {
		return b
	}
	b = chase.BudgetForStableSearchCtx(ctx, c.db, c.rules, extras, 0)
	if ctx.Err() != nil {
		// The probe was cut short and returned its fallback cap; use it
		// for this run but do not poison the cache — the next run with a
		// healthy context derives the real bound.
		return b
	}
	c.mu.Lock()
	c.budgets[key] = b
	c.mu.Unlock()
	return b
}

// mergeExtras unions the compile-time extra constants with a run's,
// deduplicating by term key.
func mergeExtras(base, extra []logic.Term) []logic.Term {
	if len(extra) == 0 {
		return base
	}
	have := make(map[string]bool, len(base)+len(extra))
	out := make([]logic.Term, 0, len(base)+len(extra))
	for _, c := range base {
		if !have[c.Key()] {
			have[c.Key()] = true
			out = append(out, c)
		}
	}
	for _, c := range extra {
		if !have[c.Key()] {
			have[c.Key()] = true
			out = append(out, c)
		}
	}
	return out
}

// Enumerate streams the stable models to visit (return false to stop,
// which is not an error), implementing engine.Engine. The search
// checks ctx at every node alongside the node budget; on cancellation
// it returns ctx.Err() with the partial stats, and the Compiled engine
// remains reusable for further runs.
func (c *Compiled) Enumerate(ctx context.Context, p engine.Params, visit func(*logic.FactStore) bool) (Stats, bool, error) {
	return c.enumerate(ctx, p, visit, false)
}

func (c *Compiled) enumerate(ctx context.Context, p engine.Params, visit func(*logic.FactStore) bool, naive bool) (st Stats, ex bool, err error) {
	// Recovery boundary for the run's setup path (the budget probe's
	// chase, the root snapshot, rule-body planning), which executes on
	// the caller goroutine before any worker exists. Panics inside the
	// search itself — including a panicking visitor, which runs under
	// a worker (sequential) or under safeVisit (parallel) — are
	// recovered at the worker boundary instead (run.runWorker). Either
	// way the Compiled engine stays reusable: all mutable state was
	// owned by the failed run.
	defer func() {
		if v := recover(); v != nil {
			st, ex, err = Stats{}, true, engine.NewInternalError(v)
		}
	}()
	opt := c.opt
	opt.ExtraConstants = mergeExtras(c.opt.ExtraConstants, p.ExtraConstants)
	if opt.MaxAtoms <= 0 {
		opt.MaxAtoms = c.budgetFor(ctx, opt.ExtraConstants)
	}
	r := &run{
		rules:        c.rules,
		db:           c.db,
		opt:          opt,
		ruleDet:      c.ruleDet,
		ruleVars:     c.ruleVars,
		rulePosPreds: c.rulePosPreds,
		naive:        naive,
		ctx:          ctx,
		seen:         make(map[string]bool),
	}
	// Filled before the pool spawns: the session encoder and the model
	// keyer read these caches from every worker.
	r.initRuleBodies()
	r.dbAtomStr = make([]string, 0, c.db.Len())
	for _, a := range c.db.Atoms() {
		r.dbAtomStr = append(r.dbAtomStr, a.String())
		if a.HasNull() {
			r.dbHasNulls = true
		}
	}
	for _, t := range opt.ExtraConstants {
		if t.HasNull() {
			r.dbHasNulls = true
		}
	}
	root := &state{
		A:        c.db.Snapshot(),
		mustIn:   map[logic.FactKey]logic.Atom{},
		mustOut:  map[logic.FactKey]logic.Atom{},
		deferred: map[string]bool{},
		owns:     ownsMustIn | ownsMustOut | ownsDeferred,
	}
	return r.execute(root, resolveWorkers(opt.Workers, p.Workers, naive), visit)
}

// StableModels enumerates SMS(D,Σ).
func StableModels(db *logic.FactStore, rules []*logic.Rule, opt Options) (*Result, error) {
	c, err := Compile(db, rules, opt)
	if err != nil {
		return nil, err
	}
	return engine.CollectModels(context.Background(), c, engine.Params{}, opt.MaxModels)
}

// EnumStableModels streams stable models to visit (return false to
// stop). The bool result reports budget exhaustion (the enumeration may
// then be incomplete).
func EnumStableModels(db *logic.FactStore, rules []*logic.Rule, opt Options, visit func(*logic.FactStore) bool) (Stats, bool, error) {
	return enumStableModels(db, rules, opt, visit, false)
}

// enumStableModelsNaive runs the search with the full-rescan trigger
// detection (findTriggerNaive) instead of the delta-driven agenda. It
// is kept package-private as the differential-test oracle pinning the
// agenda-based search: both must emit exactly the same canonical model
// set (exploration order, and therefore stats, may differ).
func enumStableModelsNaive(db *logic.FactStore, rules []*logic.Rule, opt Options, visit func(*logic.FactStore) bool) (Stats, bool, error) {
	return enumStableModels(db, rules, opt, visit, true)
}

// enumStableModels compiles the program and runs one search; naive
// selects the trigger-detection strategy (delta-driven agenda vs full
// rescan).
func enumStableModels(db *logic.FactStore, rules []*logic.Rule, opt Options, visit func(*logic.FactStore) bool, naive bool) (Stats, bool, error) {
	c, err := Compile(db, rules, opt)
	if err != nil {
		return Stats{}, false, err
	}
	return c.enumerate(context.Background(), engine.Params{}, visit, naive)
}

// state is one node of the search: the derived atoms A (a copy-on-write
// snapshot layer over the parent node's store), the negative
// assumptions made when firing rules through their negative literals
// (mustOut: atoms that must never be derived), the positive promises
// made when deferring a trigger (mustIn: atoms that must eventually be
// derived), the set of deferred trigger keys, and the trigger agenda.
type state struct {
	A *logic.FactStore
	// mustIn/mustOut/deferred are shared copy-on-write with the parent
	// state: clone hands the child the parent's maps read-only, and the
	// ensure* helpers copy on the first write (owns tracks which maps
	// this state owns). Reads need no chain walk — a state always sees
	// one complete map.
	mustIn   map[logic.FactKey]logic.Atom
	mustOut  map[logic.FactKey]logic.Atom
	deferred map[string]bool
	owns     ownedMaps
	nullCtr  int
	agenda   agenda
	// sess is the state's stability-session layer, mirroring the store
	// snapshot chain (see stability.go): extended to the state's store
	// length before children snapshot it, then frozen. nil until the
	// first branch point (and always nil in naive mode, which uses the
	// full-rebuild oracle instead).
	sess *stabSession
}

// ownedMaps flags which assumption maps a state owns (may write).
type ownedMaps uint8

const (
	ownsMustIn ownedMaps = 1 << iota
	ownsMustOut
	ownsDeferred
)

func (st *state) clone() *state {
	c := &state{
		A:        st.A.Snapshot(),
		mustIn:   st.mustIn,
		mustOut:  st.mustOut,
		deferred: st.deferred,
		nullCtr:  st.nullCtr,
		agenda:   st.agenda.clone(),
	}
	if st.sess != nil {
		c.sess = st.sess.child()
	}
	return c
}

// ensureMustIn/ensureMustOut/ensureDeferred make the state's map
// private before a write: the parent's map is copied once, then owned.
// The parent is frozen while children run (the same discipline the
// store snapshots rely on), so sharing the maps read-only is safe.
func (st *state) ensureMustIn() {
	if st.owns&ownsMustIn == 0 {
		m := make(map[logic.FactKey]logic.Atom, len(st.mustIn)+1)
		for k, v := range st.mustIn {
			m[k] = v
		}
		st.mustIn = m
		st.owns |= ownsMustIn
	}
}

func (st *state) ensureMustOut() {
	if st.owns&ownsMustOut == 0 {
		m := make(map[logic.FactKey]logic.Atom, len(st.mustOut)+1)
		for k, v := range st.mustOut {
			m[k] = v
		}
		st.mustOut = m
		st.owns |= ownsMustOut
	}
}

func (st *state) ensureDeferred() {
	if st.owns&ownsDeferred == 0 {
		m := make(map[string]bool, len(st.deferred)+1)
		for k := range st.deferred {
			m[k] = true
		}
		st.deferred = m
		st.owns |= ownsDeferred
	}
}

// agenda is the per-state queue of candidate triggers. It is seeded
// once from the root (scanned = 0 forces a full sweep) and thereafter
// refreshed from store deltas only: atoms with index >= scanned have
// not yet been swept for new triggers. Because snapshot layers keep
// store indices global, both the queues and the high-water mark remain
// valid across state.clone — a child only ever sweeps its own delta.
// Entries are re-validated when popped (see triggerActive); triggers
// are shared immutably between states, so cloning copies two pointer
// slices.
type agenda struct {
	det     []*trigger // deterministic triggers, in discovery order
	ndet    []*trigger // branching triggers, in discovery order
	scanned int        // store length already swept for triggers
	seeded  bool       // the root full sweep has run (scanned alone
	// cannot encode this: an empty database also has scanned == 0, yet
	// rules with empty positive bodies still need the root sweep)
}

func (a agenda) clone() agenda {
	return agenda{
		det:     append([]*trigger(nil), a.det...),
		ndet:    append([]*trigger(nil), a.ndet...),
		scanned: a.scanned,
		seeded:  a.seeded,
	}
}

// searcher is one worker of the pool: the compiled artifacts and the
// run-wide sink/counters are promoted from the embedded run (shared by
// every worker); stats and keyBuf are worker-local. A sequential
// enumeration is simply a run with a single worker and no pool.
type searcher struct {
	*run
	// stats is the worker-local effort, merged into run.stats when the
	// worker exits (Nodes and ModelsEmitted are tracked on the run
	// itself: the node counter doubles as the global MaxNodes budget,
	// and emission is owned by the sink).
	stats    Stats
	keyBuf   []byte   // reused by triggerKey
	partsBuf []string // reused by modelKey
	// stab holds the worker-local scratch buffers of the stability
	// session encoder and solver (stability.go).
	stab stabScratch
}

// initRules precomputes the per-rule facts the hot trigger paths need.
func (s *Compiled) initRules() {
	s.ruleDet = make([]bool, len(s.rules))
	s.ruleVars = make([][]string, len(s.rules))
	s.rulePosPreds = make([][]string, len(s.rules))
	for i, r := range s.rules {
		// A rule needs no branching when it has a single disjunct, no
		// negation, and no existential head variables — or when it is a
		// negation-free constraint, whose only effect is to kill the
		// branch (a constraint with negation still branches: it can be
		// deferred through its negative literals).
		if r.IsConstraint() {
			s.ruleDet[i] = !r.HasNegation()
		} else {
			s.ruleDet[i] = len(r.Heads) == 1 && !r.HasNegation() && len(r.ExistVars(0)) == 0
		}
		vars := make([]string, 0, 4)
		for v := range r.PosBodyVars() {
			vars = append(vars, v)
		}
		sort.Strings(vars)
		s.ruleVars[i] = vars
		preds := make([]string, 0, 4)
		for _, a := range r.PosBody() {
			dup := false
			for _, p := range preds {
				if p == a.Pred {
					dup = true
					break
				}
			}
			if !dup {
				preds = append(preds, a.Pred)
			}
		}
		s.rulePosPreds[i] = preds
	}
}

// predsIntersect reports whether the two small predicate lists share an
// element.
func predsIntersect(a, b []string) bool {
	for _, x := range a {
		for _, y := range b {
			if x == y {
				return true
			}
		}
	}
	return false
}

// trigger is an active trigger: a rule, a homomorphism of its positive
// body into A whose negative body instances are absent from A, such
// that no head disjunct is satisfied and the trigger has not been
// deferred. Triggers are immutable once enqueued (states share them).
type trigger struct {
	rule    *logic.Rule
	ruleIdx int
	hom     logic.Subst
	// key caches the compact identity, filled lazily by triggerKey. It
	// is an atomic pointer because cloned agendas share triggers across
	// sibling subtrees: two workers may race to fill the cache, but
	// both compute the same bytes, so either store may win.
	key atomic.Pointer[string]
}

// triggerKey returns a compact identity for the trigger: the rule index
// followed by the canonical keys of the homomorphism's bindings in the
// rule's fixed variable order, assembled in a reused buffer. It
// replaces the old Label + "|" + hom.String() key, which sorted the
// variable names and rendered every term per call.
func (s *searcher) triggerKey(t *trigger) string {
	if k := t.key.Load(); k != nil {
		return *k
	}
	buf := strconv.AppendInt(s.keyBuf[:0], int64(t.ruleIdx), 10)
	for _, v := range s.ruleVars[t.ruleIdx] {
		buf = append(buf, '|')
		buf = t.hom[v].AppendKey(buf)
	}
	s.keyBuf = buf
	k := string(buf)
	t.key.Store(&k)
	return k
}

// deterministic reports whether handling the trigger requires no
// branching.
func (s *searcher) deterministic(t *trigger) bool { return s.ruleDet[t.ruleIdx] }

// refreshAgenda sweeps the store delta (atoms with index >= scanned)
// for new triggers of every rule and appends them to the state's
// queues. FindHomsFrom enumerates exactly the body homomorphisms using
// at least one delta atom, so across the life of a state each candidate
// trigger is discovered once: a homomorphism lying entirely in old
// atoms was enqueued (or filtered) by an earlier sweep of this state or
// an ancestor, and the filters — a satisfied head disjunct, a negative
// body instance already derived, a deferral — are all permanent along a
// branch because the store and the deferral set only grow.
func (s *searcher) refreshAgenda(st *state) {
	n := st.A.Len()
	if st.agenda.seeded && st.agenda.scanned >= n {
		return
	}
	from := st.agenda.scanned
	seeded := st.agenda.seeded
	st.agenda.seeded = true
	// For a delta sweep, collect the window's predicates once: rules
	// with no positive body predicate in the window cannot gain a new
	// trigger, so their homomorphism searches are skipped outright.
	// (The root sweep must run every rule — including empty-positive-
	// body rules, which no delta ever covers.)
	var winPreds []string
	if seeded {
		winPreds = s.stab.preds[:0]
		seen := s.stab.predSeen
		if seen == nil {
			seen = make(map[string]bool)
			s.stab.predSeen = seen
		}
		st.A.EachAtomIn(from, n, func(_ int, a logic.Atom) bool {
			if !seen[a.Pred] {
				seen[a.Pred] = true
				winPreds = append(winPreds, a.Pred)
			}
			return true
		})
		for _, p := range winPreds {
			delete(seen, p)
		}
		s.stab.preds = winPreds[:0]
	}
	for i, r := range s.rules {
		rule, idx := r, i
		if seeded && !predsIntersect(s.rulePosPreds[i], winPreds) {
			continue
		}
		s.rulePlans[idx].FindHomsFrom(st.A, from, logic.Subst{}, func(h logic.Subst) bool {
			// Satisfied heads need no action.
			for d := range rule.Heads {
				if logic.ExistsHom(rule.Heads[d], nil, st.A, h) {
					return true
				}
			}
			t := &trigger{rule: rule, ruleIdx: idx, hom: h.Clone()}
			if len(st.deferred) > 0 && st.deferred[s.triggerKey(t)] {
				return true
			}
			if s.ruleDet[idx] {
				st.agenda.det = append(st.agenda.det, t)
			} else {
				st.agenda.ndet = append(st.agenda.ndet, t)
			}
			return true
		})
	}
	st.agenda.scanned = n
}

// triggerActive re-validates an agenda entry at pop time: since its
// discovery the trigger may have been retired — a head disjunct
// satisfied by later additions, a negative body instance derived, or
// the trigger deferred. All three conditions are monotone along a
// branch, so an inactive entry is dropped permanently.
func (s *searcher) triggerActive(st *state, t *trigger) bool {
	if len(st.deferred) > 0 && st.deferred[s.triggerKey(t)] {
		return false
	}
	for _, n := range s.ruleNeg[t.ruleIdx] {
		if st.A.HasUnder(t.hom, n) {
			return false
		}
	}
	for i := range t.rule.Heads {
		if logic.ExistsHom(t.rule.Heads[i], nil, st.A, t.hom) {
			return false
		}
	}
	return true
}

// nextTrigger returns the next active trigger and removes it from the
// state's agenda, preferring deterministic triggers; nil means the
// state reached a fixpoint. In naive mode it delegates to the
// full-rescan oracle instead.
//
// Deterministic triggers pop in discovery order: the deterministic
// closure is confluent (monotone additions, no branching), so their
// order cannot change the fixpoint. Branching triggers are selected by
// lowest rule index first, ties broken by smallest canonical trigger
// key — branching order is not neutral, because witness pools are
// drawn from the domain at branch time, so a different trigger order
// can reach a different (equally sound) subset of the stable models.
// The key tie-break (PR 6) makes the selection independent of hom
// emission order, which the join planner reorders freely: the agenda,
// the full-rescan oracle, and every planner setting branch on exactly
// the same trigger at every node, so the canonical model set is
// invariant across all of them.
func (s *searcher) nextTrigger(st *state) *trigger {
	if s.naive {
		return s.findTriggerNaive(st)
	}
	s.refreshAgenda(st)
	ag := &st.agenda
	for len(ag.det) > 0 {
		t := ag.det[0]
		ag.det = ag.det[1:]
		if s.triggerActive(st, t) {
			return t
		}
	}
	best := -1
	for i := 0; i < len(ag.ndet); {
		t := ag.ndet[i]
		if best >= 0 {
			b := ag.ndet[best]
			if t.ruleIdx > b.ruleIdx ||
				(t.ruleIdx == b.ruleIdx && s.triggerKey(t) >= s.triggerKey(b)) {
				i++ // cannot beat the current pick; leave unvalidated
				continue
			}
		}
		if !s.triggerActive(st, t) {
			ag.ndet = append(ag.ndet[:i], ag.ndet[i+1:]...)
			continue // retired permanently (monotone conditions)
		}
		best = i
		i++
	}
	if best < 0 {
		return nil
	}
	t := ag.ndet[best]
	ag.ndet = append(ag.ndet[:best], ag.ndet[best+1:]...)
	return t
}

// findTriggerNaive is the pre-agenda trigger detection, kept as the
// differential-test oracle: it re-runs a full homomorphism sweep of
// every rule against the whole store on every call, preferring
// deterministic triggers. Like the agenda it selects the branching
// trigger by (lowest rule index, smallest canonical trigger key), so
// its selection is independent of hom emission order — the oracle
// enumerates every active trigger of the winning rule to find the
// minimum, which the agenda gets for free from its queue scan.
func (s *searcher) findTriggerNaive(st *state) *trigger {
	var firstNdet *trigger
	for i, r := range s.rules {
		rule, idx := r, i
		det := s.ruleDet[idx]
		if !det && firstNdet != nil {
			continue // a lower rule already owns the branching pick
		}
		var found *trigger
		logic.FindHoms(rule.PosBody(), rule.NegBody(), st.A, logic.Subst{}, func(h logic.Subst) bool {
			// Satisfied heads need no action.
			for d := range rule.Heads {
				if logic.ExistsHom(rule.Heads[d], nil, st.A, h) {
					return true
				}
			}
			t := &trigger{rule: rule, ruleIdx: idx, hom: h.Clone()}
			if len(st.deferred) > 0 && st.deferred[s.triggerKey(t)] {
				return true
			}
			if det {
				found = t
				return false // confluent closure: any active trigger will do
			}
			if found == nil || s.triggerKey(t) < s.triggerKey(found) {
				found = t
			}
			return true
		})
		if found == nil {
			continue
		}
		if det {
			return found
		}
		firstNdet = found
	}
	return firstNdet
}

// dfs explores the state; returns false if the search should stop
// globally (visitor stop, budget, or cancellation — all recorded in
// the shared run so sibling workers unwind too).
func (s *searcher) dfs(st *state) bool {
	if s.stop.Load() {
		return false
	}
	if s.nodes.Add(1) > s.opt.MaxNodes {
		s.exhausted.Store(true)
		s.stop.Store(true)
		return false
	}
	if err := s.ctx.Err(); err != nil {
		s.cancelWith(err)
		return false
	}
	// Deterministic closure: fire forced triggers without branching.
	// The closure of one node can run thousands of applications without
	// re-entering dfs, so the pool-wide stop flag (visitor stop, memory
	// watermark, a sibling's fault, the Solver's wall-clock watchdog)
	// is observed every iteration and the context periodically.
	for i := 0; ; i++ {
		if s.stop.Load() {
			return false
		}
		if i&63 == 63 {
			if err := s.ctx.Err(); err != nil {
				s.cancelWith(err)
				return false
			}
		}
		t := s.nextTrigger(st)
		if t == nil {
			return s.complete(st)
		}
		if !s.deterministic(t) {
			return s.branch(st, t)
		}
		s.stats.Deterministic++
		if !s.apply(st, t, 0, t.hom) {
			return true // dead branch
		}
	}
}

// branch handles a non-deterministic trigger: one child per
// (disjunct, witness tuple) plus one deferral child per negative body
// literal instance. st is frozen from here on — children only snapshot
// it — so sibling subtrees may be explored concurrently (see explore).
func (s *searcher) branch(st *state, t *trigger) bool {
	s.stats.Branches++
	if !s.naive {
		// Freeze discipline: encode this state's stability window before
		// any child snapshots the session chain. Every model emitted
		// below shares this segment of the encoding.
		s.extendStability(st)
	}
	for i := range t.rule.Heads {
		exist := t.rule.ExistVars(i)
		for _, mu := range s.witnessTuples(st, exist) {
			child := st.clone()
			full := t.hom.Clone()
			// Materialize witness terms, turning fresh placeholders
			// into sequentially numbered nulls.
			fresh := make(map[string]logic.Term)
			for _, z := range exist {
				w := mu[z]
				if w.Kind == logic.Var { // fresh placeholder
					n, ok := fresh[w.Name]
					if !ok {
						child.nullCtr++
						n = logic.N("n" + strconv.Itoa(child.nullCtr))
						fresh[w.Name] = n
					}
					full[z] = n
				} else {
					full[z] = w
				}
			}
			if s.applyTo(child, t, i, full) {
				if !s.explore(child) {
					return false
				}
			}
		}
	}
	// Deferral branches: assume one negative body instance will be in
	// the final model, blocking the trigger.
	negBody := s.ruleNeg[t.ruleIdx]
	if len(negBody) == 0 {
		return true
	}
	seenNeg := map[logic.FactKey]bool{}
	for _, n := range negBody {
		g := t.hom.ApplyAtom(n)
		k := st.A.InternKey(g)
		if seenNeg[k] {
			continue
		}
		seenNeg[k] = true
		child := st.clone()
		if _, conflict := child.mustOut[k]; conflict {
			continue
		}
		child.ensureMustIn()
		child.mustIn[k] = g
		child.ensureDeferred()
		child.deferred[s.triggerKey(t)] = true
		if !s.explore(child) {
			return false
		}
	}
	return true
}

// witnessTuples enumerates the witness assignments for the existential
// variables: every tuple over the current domain ∪ extra constants ∪
// fresh placeholders (canonically ordered: placeholder j+1 may appear
// only if placeholder j appears earlier), or a single all-fresh tuple
// under WitnessFreshOnly. The returned substitutions map existential
// variables to terms; fresh placeholders are variables named $f<i>.
func (s *searcher) witnessTuples(st *state, exist []string) []logic.Subst {
	if len(exist) == 0 {
		return []logic.Subst{{}}
	}
	if s.opt.WitnessPolicy == WitnessFreshOnly {
		mu := logic.Subst{}
		for i, z := range exist {
			mu[z] = logic.V("$f" + strconv.Itoa(i))
		}
		return []logic.Subst{mu}
	}
	// The pool is the store's incrementally maintained term set; extra
	// constants are deduplicated by one domain lookup each instead of a
	// scan of the pool (plus a scan of the few extras appended so far,
	// in case ExtraConstants itself repeats a term).
	pool := st.A.Domain()
	nDom := len(pool)
	for _, c := range s.opt.ExtraConstants {
		if st.A.HasDomainTerm(c) {
			continue
		}
		dup := false
		for _, p := range pool[nDom:] {
			if p.Equal(c) {
				dup = true
				break
			}
		}
		if !dup {
			pool = append(pool, c)
		}
	}
	var out []logic.Subst
	mu := logic.Subst{}
	var rec func(i, freshUsed int)
	rec = func(i, freshUsed int) {
		if i == len(exist) {
			out = append(out, mu.Clone())
			return
		}
		for _, v := range pool {
			mu[exist[i]] = v
			rec(i+1, freshUsed)
		}
		// Reuse an already-introduced fresh placeholder…
		for f := 0; f < freshUsed; f++ {
			mu[exist[i]] = logic.V("$f" + strconv.Itoa(f))
			rec(i+1, freshUsed)
		}
		// …or introduce the next one (canonical order).
		if freshUsed < len(exist) {
			mu[exist[i]] = logic.V("$f" + strconv.Itoa(freshUsed))
			rec(i+1, freshUsed+1)
		}
		delete(mu, exist[i])
	}
	rec(0, 0)
	return out
}

// apply clones nothing: it fires the trigger on st in place (used for
// deterministic triggers). Reports false if the branch died.
func (s *searcher) apply(st *state, t *trigger, disjunct int, full logic.Subst) bool {
	return s.applyTo(st, t, disjunct, full)
}

// applyTo fires (rule, hom) choosing the given disjunct under the fully
// extended substitution: head atoms are added to A and the negative
// body instances recorded as permanent negative assumptions. It reports
// false when the state became inconsistent (or a budget was hit).
func (s *searcher) applyTo(st *state, t *trigger, disjunct int, full logic.Subst) bool {
	if t.rule.IsConstraint() {
		return false
	}
	if s.opt.MaxMemory > 0 {
		// Charge the packed bytes of every fact this application retains
		// against the run's memory watermark, whichever way the function
		// returns.
		before := st.A.TupleBytes()
		defer func() { s.chargeMem(st.A.TupleBytes() - before) }()
	}
	for _, n := range s.ruleNeg[t.ruleIdx] {
		g := t.hom.ApplyAtom(n)
		k := st.A.InternKey(g)
		if st.A.HasFactKey(k) {
			return false
		}
		if _, promised := st.mustIn[k]; promised {
			return false
		}
		st.ensureMustOut()
		st.mustOut[k] = g
	}
	for _, a := range t.rule.Heads[disjunct] {
		g := full.ApplyAtom(a)
		if len(st.mustOut) > 0 {
			// A key miss means g's symbols were never interned, so g
			// cannot have been recorded in any assumption ledger.
			if k, ok := st.A.LookupKey(g); ok {
				if _, banned := st.mustOut[k]; banned {
					return false
				}
			}
		}
		st.A.Add(g)
	}
	if st.A.Len() > s.opt.MaxAtoms {
		s.exhausted.Store(true)
		return false
	}
	return true
}

// complete validates a fixpoint state and, if it passes the paper's
// stability condition, emits the model through the run's deduplicating
// sink. The stability check — the dominant per-model cost — runs
// outside the sink lock, so workers validate candidate models
// concurrently. The session path relies on the agenda invariant that a
// fixpoint state passing the mustIn/mustOut checks is a model of Σ
// (every body homomorphism was discovered by some sweep and either
// fired, had a head disjunct satisfied, or was deferred with its
// promised negative instance now derived); the naive oracle keeps the
// explicit logic.IsModel check, so the differential suites would
// surface any violation as a model-set mismatch.
func (s *searcher) complete(st *state) bool {
	s.stats.Completed++
	for k := range st.mustIn {
		if !st.A.HasFactKey(k) {
			return true // a deferral promise was never fulfilled
		}
	}
	for k := range st.mustOut {
		if st.A.HasFactKey(k) {
			return true // a negative assumption was violated
		}
	}
	if s.naive && !logic.IsModel(s.rules, st.A) {
		return true
	}
	key := s.modelKey(st)
	if s.seenKey(key) {
		return true
	}
	s.stats.StabilityChecks++
	var stable bool
	if s.naive {
		stable = stableAgainstSubsetsNaive(s.db, s.rules, st.A)
	} else {
		s.extendStability(st)
		stable = s.stableSession(st)
		if s.opt.stabOracle != nil && stable != stableAgainstSubsetsNaive(s.db, s.rules, st.A) {
			s.opt.stabOracle.Add(1)
		}
	}
	if !stable {
		s.stats.StabilityFailed++
		return true
	}
	// The emitted store is an O(1) snapshot of the leaf: the leaf layer
	// and its frozen ancestors are never written again (complete is
	// terminal for the state, and parent layers froze when their
	// children were snapshotted), so the chain may be shared with the
	// caller instead of flattened into a deep copy.
	return s.emit(key, st.A.Snapshot())
}

// modelKey returns canonicalModelKey(st.A), through a fast path for
// the common null-free candidate: without nulls the canonical key is
// just the sorted atom renders, and the database prefix — shared by
// every leaf of the search — is rendered once per run instead of once
// per candidate. st.nullCtr counts the nulls invented along the path,
// so nullCtr == 0 with a null-free database certifies a null-free
// store.
func (s *searcher) modelKey(st *state) string {
	if s.dbHasNulls || st.nullCtr > 0 {
		return canonicalModelKey(st.A)
	}
	n := st.A.Len()
	parts := append(s.partsBuf[:0], s.dbAtomStr...)
	for i := len(s.dbAtomStr); i < n; i++ {
		parts = append(parts, st.A.AtomAt(i).String())
	}
	sort.Strings(parts)
	s.partsBuf = parts[:0]
	return strings.Join(parts, ";")
}

// canonicalModelKey renders the model with nulls renamed by first
// occurrence in a null-masked atom ordering, so that models differing
// only in null invention order collapse. (This is a practical
// canonicalization, not a full graph canonization; see DESIGN.md.)
func canonicalModelKey(m *logic.FactStore) string {
	atoms := append([]logic.Atom(nil), m.Atoms()...)
	masked := make([]string, len(atoms))
	for i, a := range atoms {
		masked[i] = maskNulls(a)
	}
	idx := make([]int, len(atoms))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool {
		if masked[idx[i]] != masked[idx[j]] {
			return masked[idx[i]] < masked[idx[j]]
		}
		return atoms[idx[i]].Key() < atoms[idx[j]].Key()
	})
	ren := map[string]string{}
	var parts []string
	for _, i := range idx {
		a := atoms[i]
		renamed := renameCanonical(a, ren)
		parts = append(parts, renamed.String())
	}
	sort.Strings(parts)
	return strings.Join(parts, ";")
}

func maskNulls(a logic.Atom) string {
	var b strings.Builder
	b.WriteString(a.Pred)
	b.WriteByte('(')
	for i, t := range a.Args {
		if i > 0 {
			b.WriteByte(',')
		}
		if t.Kind == logic.Null {
			b.WriteByte('*')
		} else {
			b.WriteString(t.String())
		}
	}
	b.WriteByte(')')
	return b.String()
}

func renameCanonical(a logic.Atom, ren map[string]string) logic.Atom {
	args := make([]logic.Term, len(a.Args))
	for i, t := range a.Args {
		if t.Kind == logic.Null {
			n, ok := ren[t.Name]
			if !ok {
				n = "c" + strconv.Itoa(len(ren)+1)
				ren[t.Name] = n
			}
			args[i] = logic.N(n)
		} else {
			args[i] = t
		}
	}
	return logic.Atom{Pred: a.Pred, Args: args}
}

// IsStableModel checks Definition 1 directly for a candidate
// interpretation (given by its positive part): M must contain D, be a
// model of Σ, and admit no J with D ⊆ J ⊊ M⁺ satisfying the
// τ_{p▷s}-transform (checked via SAT; Proposition 11).
func IsStableModel(db *logic.FactStore, rules []*logic.Rule, m *logic.FactStore) bool {
	if !db.SubsetOf(m) {
		return false
	}
	if !logic.IsModel(rules, m) {
		return false
	}
	return stableAgainstSubsets(db, rules, m)
}

// Describe renders a model deterministically for tests and tools.
func Describe(m *logic.FactStore) string { return m.CanonicalString() }
