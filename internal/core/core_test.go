package core_test

import (
	"testing"

	"ntgd/internal/core"
	"ntgd/internal/logic"
	"ntgd/internal/parser"
)

// fatherProgram is the running example of the paper (Example 1): every
// person has a biological father, and two distinct fathers make a
// person abnormal.
const fatherProgram = `
person(alice).
person(X) -> hasFather(X,Y).
hasFather(X,Y) -> sameAs(Y,Y).
hasFather(X,Y), hasFather(X,Z), not sameAs(Y,Z) -> abnormal(X).
`

func mustParse(t *testing.T, src string) *logic.Program {
	t.Helper()
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return p
}

// TestExample4StableModelWithConstantWitness reproduces Example 4: the
// interpretation containing hasFather(alice, bob) is a stable model
// under the new semantics (it is not under the LP approach), hence
// q = ¬hasFather(alice, bob) is not entailed.
func TestExample4StableModelWithConstantWitness(t *testing.T) {
	prog := mustParse(t, fatherProgram)
	db := prog.Database()

	m := logic.StoreOf(
		logic.A("person", logic.C("alice")),
		logic.A("hasFather", logic.C("alice"), logic.C("bob")),
		logic.A("sameAs", logic.C("bob"), logic.C("bob")),
	)
	if !core.IsStableModel(db, prog.Rules, m) {
		t.Fatalf("Example 4: %s should be a stable model under the SO semantics", m.CanonicalString())
	}

	// Dropping sameAs(bob,bob) breaks model-hood.
	m2 := logic.StoreOf(
		logic.A("person", logic.C("alice")),
		logic.A("hasFather", logic.C("alice"), logic.C("bob")),
	)
	if core.IsStableModel(db, prog.Rules, m2) {
		t.Fatalf("missing sameAs(bob,bob): should not be a stable model")
	}

	// Adding an unsupported atom breaks stability.
	m3 := m.Clone()
	m3.Add(logic.A("sameAs", logic.C("alice"), logic.C("alice")))
	if core.IsStableModel(db, prog.Rules, m3) {
		t.Fatalf("unsupported sameAs(alice,alice): should not be stable")
	}
}

// TestExample2QueryNotEntailed reproduces Example 2 under the new
// semantics: q = ¬hasFather(alice,bob) (expressed as the safe NBCQ
// person(alice) ∧ ¬hasFather(alice,bob)) must NOT be entailed, because
// from D and Σ there is no evidence that bob is not the father.
func TestExample2QueryNotEntailed(t *testing.T) {
	prog := mustParse(t, fatherProgram+"?- person(alice), not hasFather(alice,bob).")
	db := prog.Database()
	q := prog.Queries[0]

	res, err := core.CautiousEntails(db, prog.Rules, q, core.Options{})
	if err != nil {
		t.Fatalf("CautiousEntails: %v", err)
	}
	if res.Entailed {
		t.Fatalf("Example 2: query should NOT be cautiously entailed under the SO semantics")
	}
	if res.Witness == nil || !res.Witness.Has(logic.A("hasFather", logic.C("alice"), logic.C("bob"))) {
		t.Fatalf("counter-model should contain hasFather(alice,bob); got %v", res.Witness)
	}
}

// TestExample2BagetSemanticsEntailsWrongly: under the operational
// chase-based semantics of Baget et al. (fresh nulls only), the same
// query IS entailed — the unintended answer the paper criticizes.
func TestExample2BagetSemanticsEntailsWrongly(t *testing.T) {
	prog := mustParse(t, fatherProgram+"?- person(alice), not hasFather(alice,bob).")
	db := prog.Database()
	q := prog.Queries[0]

	res, err := core.CautiousEntails(db, prog.Rules, q, core.Options{WitnessPolicy: core.WitnessFreshOnly})
	if err != nil {
		t.Fatalf("CautiousEntails: %v", err)
	}
	if !res.Entailed {
		t.Fatalf("under fresh-only witnesses the query should be (wrongly) entailed")
	}
}

// TestExample1NormalAbnormal: q2 = ∃X person(X) ∧ ¬abnormal(X) is
// entailed, q3 = ∃X person(X) ∧ abnormal(X) is refuted (Example 1).
func TestExample1NormalAbnormal(t *testing.T) {
	prog := mustParse(t, fatherProgram+`
?- person(X), not abnormal(X).
?- person(X), abnormal(X).
`)
	db := prog.Database()

	res, err := core.CautiousEntails(db, prog.Rules, prog.Queries[0], core.Options{})
	if err != nil {
		t.Fatalf("q2: %v", err)
	}
	if !res.Entailed {
		t.Fatalf("q2 = person ∧ ¬abnormal should be cautiously entailed")
	}

	res, err = core.BraveEntails(db, prog.Rules, prog.Queries[1], core.Options{})
	if err != nil {
		t.Fatalf("q3: %v", err)
	}
	if res.Entailed {
		t.Fatalf("q3 = person ∧ abnormal should not even be bravely entailed")
	}
}

// TestSection32NoStableModels: D = {p(0)}, Σ = {p(X) ∧ ¬t(X) → r(X),
// r(X) → t(X)} has no stable models (the motivating example of
// Section 3.2/3.3), yet J = {p(0), t(0)} is a minimal model — the gap
// between MM[D,Σ] and SM[D,Σ].
func TestSection32NoStableModels(t *testing.T) {
	prog := mustParse(t, `
p(0).
p(X), not t(X) -> r(X).
r(X) -> t(X).
`)
	db := prog.Database()
	res, err := core.StableModels(db, prog.Rules, core.Options{})
	if err != nil {
		t.Fatalf("StableModels: %v", err)
	}
	if len(res.Models) != 0 {
		t.Fatalf("expected no stable models, got %d: %v", len(res.Models), res.Models[0].CanonicalString())
	}

	j := logic.StoreOf(logic.A("p", logic.C("0")), logic.A("t", logic.C("0")))
	if !logic.IsModel(prog.Rules, j) {
		t.Fatalf("J = {p(0), t(0)} should be a classical model")
	}
	if !core.IsMinimalModel(db, prog.Rules, j) {
		t.Fatalf("J should be a minimal model (it satisfies MM[D,Σ])")
	}
	if core.IsStableModel(db, prog.Rules, j) {
		t.Fatalf("J must NOT be a stable model (it violates SM[D,Σ])")
	}
}

// TestEnumerationFatherExample: without extra constants the father
// program has exactly two stable models up to null naming: the
// self-father model and the fresh-null-father model.
func TestEnumerationFatherExample(t *testing.T) {
	prog := mustParse(t, fatherProgram)
	db := prog.Database()
	res, err := core.StableModels(db, prog.Rules, core.Options{})
	if err != nil {
		t.Fatalf("StableModels: %v", err)
	}
	if len(res.Models) != 2 {
		for _, m := range res.Models {
			t.Logf("model: %s", m.CanonicalString())
		}
		t.Fatalf("expected 2 stable models, got %d", len(res.Models))
	}
	for _, m := range res.Models {
		if m.CountPred("hasFather") != 1 {
			t.Fatalf("each stable model has exactly one father: %s", m.CanonicalString())
		}
		if m.CountPred("abnormal") != 0 {
			t.Fatalf("no stable model is abnormal: %s", m.CanonicalString())
		}
		if !core.IsStableModel(db, prog.Rules, m) {
			t.Fatalf("emitted model fails the independent stability check: %s", m.CanonicalString())
		}
	}
}

// TestLemma7FixpointCharacterization validates Lemma 7 on the father
// example: M⁺ = T∞_{Σ,M}(D) for every enumerated stable model.
func TestLemma7FixpointCharacterization(t *testing.T) {
	prog := mustParse(t, fatherProgram)
	db := prog.Database()
	res, err := core.StableModels(db, prog.Rules, core.Options{})
	if err != nil {
		t.Fatalf("StableModels: %v", err)
	}
	for _, m := range res.Models {
		tinf := core.TInfinity(db, prog.Rules, m)
		if !tinf.Equal(m) {
			t.Fatalf("Lemma 7 violated:\n  M  = %s\n  T∞ = %s", m.CanonicalString(), tinf.CanonicalString())
		}
	}
	// And the TInfinity counterexample of Section 5.1: I⁺ = T∞ does
	// not imply stability.
	prog2 := mustParse(t, `s(a). s(X) -> p(X,Y).`)
	i := logic.StoreOf(
		logic.A("s", logic.C("a")),
		logic.A("p", logic.C("a"), logic.C("b")),
		logic.A("p", logic.C("a"), logic.C("c")),
	)
	tinf := core.TInfinity(prog2.Database(), prog2.Rules, i)
	if !tinf.Equal(i) {
		t.Fatalf("Section 5.1 example: I⁺ should equal T∞_{Σ,I}(D); got %s", tinf.CanonicalString())
	}
	if core.IsStableModel(prog2.Database(), prog2.Rules, i) {
		t.Fatalf("Section 5.1 example: I is not a stable model (two unsupported witnesses)")
	}
}

// TestDisjunctionBasic: a disjunctive guess yields one stable model per
// disjunct, and a constraint prunes.
func TestDisjunctionBasic(t *testing.T) {
	prog := mustParse(t, `
node(a).
node(X) -> red(X) | green(X).
:- green(X).
`)
	db := prog.Database()
	res, err := core.StableModels(db, prog.Rules, core.Options{})
	if err != nil {
		t.Fatalf("StableModels: %v", err)
	}
	if len(res.Models) != 1 {
		t.Fatalf("expected 1 stable model, got %d", len(res.Models))
	}
	if !res.Models[0].Has(logic.A("red", logic.C("a"))) {
		t.Fatalf("expected red(a) in %s", res.Models[0].CanonicalString())
	}
}

// TestFalseAuxTrick: the paper's encoding idiom — false ∧ ¬aux → aux —
// makes every candidate containing `false` unstable, without native
// constraints.
func TestFalseAuxTrick(t *testing.T) {
	prog := mustParse(t, `
node(a).
node(X) -> red(X) | green(X).
green(X) -> false.
false, not aux -> aux.
`)
	db := prog.Database()
	res, err := core.StableModels(db, prog.Rules, core.Options{})
	if err != nil {
		t.Fatalf("StableModels: %v", err)
	}
	if len(res.Models) != 1 {
		for _, m := range res.Models {
			t.Logf("model: %s", m.CanonicalString())
		}
		t.Fatalf("expected 1 stable model, got %d", len(res.Models))
	}
	if res.Models[0].CountPred("false") != 0 {
		t.Fatalf("stable model must not contain false: %s", res.Models[0].CanonicalString())
	}
}
