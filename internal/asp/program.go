// Package asp implements stable model semantics for ground
// (propositional) logic programs: well-founded semantics via the
// alternating fixpoint, stable model enumeration for normal programs
// (three-valued propagation, branching, and a reduct-based final
// check), and disjunctive programs via a SAT-encoded minimality check.
// It is the back half of the paper's "LP approach" (Section 3.1):
// Skolemization and grounding are done by internal/ground, after which
// "the standard stable model semantics for normal logic programs ...
// is applied" — by this package.
//
// Rules generalize the usual ASP format slightly: a head is a
// disjunction of conjunctions of atoms (the ground image of an NDTGD
// head); normal rules have a single disjunct, facts an empty body, and
// constraints no disjuncts at all.
package asp

import (
	"fmt"
	"sort"
	"strings"
)

// Rule is a ground rule
//
//	d1 | ... | dn :- p1, ..., pk, not m1, ..., not mj.
//
// where each disjunct di is a non-empty conjunction of atom IDs.
// len(Disjuncts) == 0 encodes a constraint.
type Rule struct {
	Disjuncts [][]int
	Pos       []int
	Neg       []int
}

// IsConstraint reports whether the rule has no head.
func (r Rule) IsConstraint() bool { return len(r.Disjuncts) == 0 }

// IsFact reports whether the rule has an empty body and one disjunct.
func (r Rule) IsFact() bool {
	return len(r.Pos) == 0 && len(r.Neg) == 0 && len(r.Disjuncts) == 1
}

// Program is a ground program over atoms 0..NAtoms-1. Names is
// optional (used for rendering); when nil atoms print as a<id>.
type Program struct {
	NAtoms int
	Rules  []Rule
	Names  []string
}

// Validate checks atom ids are in range and disjuncts non-empty.
func (p *Program) Validate() error {
	check := func(id int) error {
		if id < 0 || id >= p.NAtoms {
			return fmt.Errorf("asp: atom id %d out of range [0,%d)", id, p.NAtoms)
		}
		return nil
	}
	for i, r := range p.Rules {
		for _, d := range r.Disjuncts {
			if len(d) == 0 {
				return fmt.Errorf("asp: rule %d has an empty disjunct", i)
			}
			for _, a := range d {
				if err := check(a); err != nil {
					return err
				}
			}
		}
		for _, a := range r.Pos {
			if err := check(a); err != nil {
				return err
			}
		}
		for _, a := range r.Neg {
			if err := check(a); err != nil {
				return err
			}
		}
	}
	return nil
}

// IsNormal reports whether every rule has at most one disjunct.
func (p *Program) IsNormal() bool {
	for _, r := range p.Rules {
		if len(r.Disjuncts) > 1 {
			return false
		}
	}
	return true
}

// AtomName renders atom id using Names when available.
func (p *Program) AtomName(id int) string {
	if p.Names != nil && id < len(p.Names) && p.Names[id] != "" {
		return p.Names[id]
	}
	return fmt.Sprintf("a%d", id)
}

// String renders the program in an ASP-like syntax.
func (p *Program) String() string {
	var b strings.Builder
	for _, r := range p.Rules {
		if len(r.Disjuncts) > 0 {
			for i, d := range r.Disjuncts {
				if i > 0 {
					b.WriteString(" | ")
				}
				for j, a := range d {
					if j > 0 {
						b.WriteString(", ")
					}
					b.WriteString(p.AtomName(a))
				}
			}
		}
		if len(r.Pos)+len(r.Neg) > 0 || r.IsConstraint() {
			b.WriteString(" :- ")
			first := true
			for _, a := range r.Pos {
				if !first {
					b.WriteString(", ")
				}
				first = false
				b.WriteString(p.AtomName(a))
			}
			for _, a := range r.Neg {
				if !first {
					b.WriteString(", ")
				}
				first = false
				b.WriteString("not ")
				b.WriteString(p.AtomName(a))
			}
		}
		b.WriteString(".\n")
	}
	return b.String()
}

// Model is a set of atom ids (a candidate or actual stable model),
// kept sorted.
type Model []int

// NewModel returns a sorted copy of ids.
func NewModel(ids []int) Model {
	m := append(Model(nil), ids...)
	sort.Ints(m)
	return m
}

// Has reports membership via binary search.
func (m Model) Has(id int) bool {
	i := sort.SearchInts(m, id)
	return i < len(m) && m[i] == id
}

// Equal reports set equality.
func (m Model) Equal(o Model) bool {
	if len(m) != len(o) {
		return false
	}
	for i := range m {
		if m[i] != o[i] {
			return false
		}
	}
	return true
}

// String renders the model using the program's atom names.
func (m Model) String(p *Program) string {
	parts := make([]string, len(m))
	for i, id := range m {
		parts[i] = p.AtomName(id)
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// truthValue is a three-valued assignment entry.
type truthValue int8

const (
	tvUnknown truthValue = iota
	tvTrue
	tvFalse
)
