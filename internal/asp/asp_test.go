package asp

import (
	"math/rand"
	"testing"
)

// prog builds a program over n atoms from a compact rule spec.
func prog(n int, rules ...Rule) *Program {
	return &Program{NAtoms: n, Rules: rules}
}

func normal(head int, pos, neg []int) Rule {
	return Rule{Disjuncts: [][]int{{head}}, Pos: pos, Neg: neg}
}

func fact(a int) Rule { return Rule{Disjuncts: [][]int{{a}}} }

func modelsOf(t *testing.T, p *Program) []Model {
	t.Helper()
	ms, _, err := AllModels(p, SolveOptions{SeedWFS: true})
	if err != nil {
		t.Fatalf("AllModels: %v", err)
	}
	return ms
}

func TestFactsOnly(t *testing.T) {
	ms := modelsOf(t, prog(2, fact(0)))
	if len(ms) != 1 || !ms[0].Has(0) || ms[0].Has(1) {
		t.Fatalf("models = %v", ms)
	}
}

func TestEvenLoopTwoModels(t *testing.T) {
	// a :- not b. b :- not a.
	p := prog(2,
		normal(0, nil, []int{1}),
		normal(1, nil, []int{0}))
	ms := modelsOf(t, p)
	if len(ms) != 2 {
		t.Fatalf("even loop should have 2 stable models, got %d", len(ms))
	}
}

func TestOddLoopNoModels(t *testing.T) {
	// a :- not a.
	p := prog(1, normal(0, nil, []int{0}))
	if ms := modelsOf(t, p); len(ms) != 0 {
		t.Fatalf("odd loop should have no stable models, got %v", ms)
	}
}

func TestPositiveLoopUnfounded(t *testing.T) {
	// a :- b. b :- a. — the empty model is the only stable model.
	p := prog(2, normal(0, []int{1}, nil), normal(1, []int{0}, nil))
	ms := modelsOf(t, p)
	if len(ms) != 1 || len(ms[0]) != 0 {
		t.Fatalf("positive loop must be unfounded: %v", ms)
	}
}

func TestConstraintPruning(t *testing.T) {
	// a :- not b. b :- not a. :- a.
	p := prog(2,
		normal(0, nil, []int{1}),
		normal(1, nil, []int{0}),
		Rule{Pos: []int{0}})
	ms := modelsOf(t, p)
	if len(ms) != 1 || !ms[0].Has(1) {
		t.Fatalf("constraint should keep only {b}: %v", ms)
	}
}

func TestConjunctiveHead(t *testing.T) {
	// (a ∧ b) :- not c.
	p := prog(3, Rule{Disjuncts: [][]int{{0, 1}}, Neg: []int{2}})
	ms := modelsOf(t, p)
	if len(ms) != 1 || !ms[0].Has(0) || !ms[0].Has(1) {
		t.Fatalf("conjunctive head: %v", ms)
	}
}

func TestDisjunctiveMinimality(t *testing.T) {
	// a | b. — two stable models {a} and {b}, not {a,b}.
	p := prog(2, Rule{Disjuncts: [][]int{{0}, {1}}})
	ms := modelsOf(t, p)
	if len(ms) != 2 {
		t.Fatalf("a|b should have 2 models, got %v", ms)
	}
	for _, m := range ms {
		if len(m) != 1 {
			t.Fatalf("non-minimal model leaked: %v", m)
		}
	}
}

func TestDisjunctiveSaturation(t *testing.T) {
	// a | b.  a :- b.  b :- a.  — the saturated {a,b} is stable
	// (classic non-head-cycle-free example).
	p := prog(2,
		Rule{Disjuncts: [][]int{{0}, {1}}},
		normal(0, []int{1}, nil),
		normal(1, []int{0}, nil))
	ms := modelsOf(t, p)
	if len(ms) != 1 || len(ms[0]) != 2 {
		t.Fatalf("saturation example: %v", ms)
	}
}

func TestWellFoundedStratified(t *testing.T) {
	// a. b :- a, not c. — WFS is total: a,b true, c false.
	p := prog(3, fact(0), normal(1, []int{0}, []int{2}))
	w, err := WellFounded(p)
	if err != nil {
		t.Fatalf("WellFounded: %v", err)
	}
	if !w.IsTrue(0) || !w.IsTrue(1) || !w.IsFalse(2) || len(w.Undefined) != 0 {
		t.Fatalf("WFS = T%v F%v U%v", w.True, w.False, w.Undefined)
	}
}

func TestWellFoundedEvenLoopUndefined(t *testing.T) {
	p := prog(2, normal(0, nil, []int{1}), normal(1, nil, []int{0}))
	w, err := WellFounded(p)
	if err != nil {
		t.Fatalf("WellFounded: %v", err)
	}
	if len(w.Undefined) != 2 {
		t.Fatalf("even loop atoms are undefined in WFS: %+v", w)
	}
}

func TestWFSRejectsDisjunction(t *testing.T) {
	p := prog(2, Rule{Disjuncts: [][]int{{0}, {1}}})
	if _, err := WellFounded(p); err == nil {
		t.Fatalf("WFS is defined for normal programs only")
	}
}

// bruteStable enumerates stable models by definition: all subsets,
// classical model check, reduct least-model check (normal) or
// minimal-model check (disjunctive, by subset enumeration).
func bruteStable(p *Program) []Model {
	var out []Model
	n := p.NAtoms
	for mask := 0; mask < 1<<n; mask++ {
		var m Model
		for a := 0; a < n; a++ {
			if mask&(1<<a) != 0 {
				m = append(m, a)
			}
		}
		if !satisfiesAll(p, m) {
			continue
		}
		if p.IsNormal() {
			if NewModel(reductLeastModel(p, m)).Equal(m) {
				out = append(out, m)
			}
			continue
		}
		// Disjunctive: no proper submodel of the reduct. The empty
		// set has no proper subsets and is trivially minimal.
		minimal := true
		for sub := (mask - 1) & mask; mask != 0; sub = (sub - 1) & mask {
			var j Model
			for a := 0; a < n; a++ {
				if sub&(1<<a) != 0 {
					j = append(j, a)
				}
			}
			if reductModels(p, m, j) {
				minimal = false
			}
			if sub == 0 || !minimal {
				break
			}
		}
		if minimal {
			out = append(out, m)
		}
	}
	return out
}

// reductModels checks whether j is a classical model of the reduct
// P^m.
func reductModels(p *Program, m, j Model) bool {
	inM := make([]bool, p.NAtoms)
	for _, a := range m {
		inM[a] = true
	}
	inJ := make([]bool, p.NAtoms)
	for _, a := range j {
		inJ[a] = true
	}
	for _, r := range p.Rules {
		blocked := false
		for _, ng := range r.Neg {
			if inM[ng] {
				blocked = true
				break
			}
		}
		if blocked {
			continue
		}
		bodyTrue := true
		for _, b := range r.Pos {
			if !inJ[b] {
				bodyTrue = false
				break
			}
		}
		if !bodyTrue {
			continue
		}
		if r.IsConstraint() {
			return false
		}
		sat := false
		for _, d := range r.Disjuncts {
			all := true
			for _, a := range d {
				if !inJ[a] {
					all = false
					break
				}
			}
			if all {
				sat = true
				break
			}
		}
		if !sat {
			return false
		}
	}
	return true
}

func equalModelSets(a, b []Model) bool {
	if len(a) != len(b) {
		return false
	}
	used := make([]bool, len(b))
	for _, m := range a {
		found := false
		for i, o := range b {
			if !used[i] && m.Equal(o) {
				used[i] = true
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// TestRandomNormalAgainstBrute (property): solver output equals the
// brute-force stable model set on random normal programs.
func TestRandomNormalAgainstBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 200; iter++ {
		n := 2 + rng.Intn(4)
		nRules := 1 + rng.Intn(6)
		p := &Program{NAtoms: n}
		for i := 0; i < nRules; i++ {
			r := Rule{Disjuncts: [][]int{{rng.Intn(n)}}}
			for b := 0; b < rng.Intn(3); b++ {
				r.Pos = append(r.Pos, rng.Intn(n))
			}
			for b := 0; b < rng.Intn(2); b++ {
				r.Neg = append(r.Neg, rng.Intn(n))
			}
			p.Rules = append(p.Rules, r)
		}
		got, _, err := AllModels(p, SolveOptions{SeedWFS: true})
		if err != nil {
			t.Fatalf("AllModels: %v", err)
		}
		want := bruteStable(p)
		if !equalModelSets(got, want) {
			t.Fatalf("iter %d: got %v want %v on\n%s", iter, got, want, p)
		}
	}
}

// TestRandomDisjunctiveAgainstBrute (property): same for disjunctive
// programs, exercising the SAT-based minimality check.
func TestRandomDisjunctiveAgainstBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for iter := 0; iter < 120; iter++ {
		n := 2 + rng.Intn(3)
		nRules := 1 + rng.Intn(5)
		p := &Program{NAtoms: n}
		for i := 0; i < nRules; i++ {
			r := Rule{}
			nd := 1 + rng.Intn(2)
			for d := 0; d < nd; d++ {
				r.Disjuncts = append(r.Disjuncts, []int{rng.Intn(n)})
			}
			for b := 0; b < rng.Intn(3); b++ {
				r.Pos = append(r.Pos, rng.Intn(n))
			}
			for b := 0; b < rng.Intn(2); b++ {
				r.Neg = append(r.Neg, rng.Intn(n))
			}
			p.Rules = append(p.Rules, r)
		}
		got, _, err := AllModels(p, SolveOptions{})
		if err != nil {
			t.Fatalf("AllModels: %v", err)
		}
		want := bruteStable(p)
		if !equalModelSets(got, want) {
			t.Fatalf("iter %d: got %v want %v on\n%s", iter, got, want, p)
		}
	}
}

// TestWFSSoundForStableModels (property): well-founded true atoms are
// in every stable model; well-founded false atoms in none.
func TestWFSSoundForStableModels(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	for iter := 0; iter < 150; iter++ {
		n := 2 + rng.Intn(4)
		p := &Program{NAtoms: n}
		for i := 0; i < 1+rng.Intn(5); i++ {
			r := Rule{Disjuncts: [][]int{{rng.Intn(n)}}}
			for b := 0; b < rng.Intn(2); b++ {
				r.Pos = append(r.Pos, rng.Intn(n))
			}
			for b := 0; b < rng.Intn(2); b++ {
				r.Neg = append(r.Neg, rng.Intn(n))
			}
			p.Rules = append(p.Rules, r)
		}
		w, err := WellFounded(p)
		if err != nil {
			t.Fatalf("WellFounded: %v", err)
		}
		for _, m := range bruteStable(p) {
			for _, a := range w.True {
				if !m.Has(a) {
					t.Fatalf("iter %d: WFS-true atom %d missing from stable model %v", iter, a, m)
				}
			}
			for _, a := range w.False {
				if m.Has(a) {
					t.Fatalf("iter %d: WFS-false atom %d inside stable model %v", iter, a, m)
				}
			}
		}
	}
}

func TestValidate(t *testing.T) {
	p := prog(1, normal(3, nil, nil))
	if err := p.Validate(); err == nil {
		t.Fatalf("out-of-range atom id should be rejected")
	}
	p2 := prog(1, Rule{Disjuncts: [][]int{{}}})
	if err := p2.Validate(); err == nil {
		t.Fatalf("empty disjunct should be rejected")
	}
}
