package asp

import (
	"context"
	"errors"
)

// ErrBudget is returned when the enumeration exceeds its node budget.
var ErrBudget = errors.New("asp: search node budget exhausted")

// SolveOptions configures stable model enumeration.
type SolveOptions struct {
	// MaxModels stops after this many stable models (0 = all).
	MaxModels int
	// MaxNodes aborts after this many search nodes (0 = 4M).
	MaxNodes int64
	// SeedWFS, when true (the default via Solve), computes the
	// well-founded model of normal programs first and fixes its true
	// and false atoms, which prunes the search dramatically.
	SeedWFS bool
	// SkipValidation skips the per-call Program.Validate pass. Set it
	// only when the program was validated once at compile time (the LP
	// pipeline's compiled engine does this).
	SkipValidation bool
}

// Stats reports search effort.
type Stats struct {
	Nodes     int64
	Conflicts int64
	Checks    int64 // full-assignment stability checks
}

// Solve enumerates the stable models of the program, invoking visit for
// each (the model is shared; callers must copy if they keep it).
// Returning false from visit stops the search. Solve returns the
// search stats and an error only on budget exhaustion (models already
// delivered remain valid).
func Solve(p *Program, opt SolveOptions, visit func(Model) bool) (Stats, error) {
	return SolveCtx(context.Background(), p, opt, visit)
}

// SolveCtx is Solve with cancellation: the search checks ctx
// periodically (every 16 nodes, starting at the first) and aborts with
// ctx.Err() and the partial stats when the context is cancelled or its
// deadline expires.
func SolveCtx(ctx context.Context, p *Program, opt SolveOptions, visit func(Model) bool) (Stats, error) {
	if !opt.SkipValidation {
		if err := p.Validate(); err != nil {
			return Stats{}, err
		}
	}
	s := &solver{p: p, opt: opt, visit: visit, ctx: ctx}
	if opt.MaxNodes <= 0 {
		s.opt.MaxNodes = 4 << 20
	}
	s.assign = make([]truthValue, p.NAtoms)
	if opt.SeedWFS && p.IsNormal() && !hasConstraint(p) {
		wfs, err := WellFounded(p)
		if err == nil {
			for _, a := range wfs.True {
				s.assign[a] = tvTrue
			}
			for _, a := range wfs.False {
				s.assign[a] = tvFalse
			}
		}
	}
	s.dfs()
	if s.ctxErr != nil {
		return s.stats, s.ctxErr
	}
	if s.budgetHit {
		return s.stats, ErrBudget
	}
	return s.stats, nil
}

// AllModels collects every stable model (subject to options).
func AllModels(p *Program, opt SolveOptions) ([]Model, Stats, error) {
	var out []Model
	stats, err := Solve(p, opt, func(m Model) bool {
		out = append(out, append(Model(nil), m...))
		return opt.MaxModels == 0 || len(out) < opt.MaxModels
	})
	return out, stats, err
}

func hasConstraint(p *Program) bool {
	for _, r := range p.Rules {
		if r.IsConstraint() {
			return true
		}
	}
	return false
}

type solver struct {
	p         *Program
	opt       SolveOptions
	assign    []truthValue
	stats     Stats
	visit     func(Model) bool
	budgetHit bool
	ctx       context.Context
	ctxErr    error
}

// dfs explores the assignment tree; it returns false when the visitor
// asked to stop or the budget was exhausted.
func (s *solver) dfs() bool {
	s.stats.Nodes++
	if s.stats.Nodes > s.opt.MaxNodes {
		s.budgetHit = true
		return false
	}
	// Assignment nodes are cheap relative to the SO search's, so the
	// cancellation check is amortized over 16 of them — but it fires at
	// the first node, so an already-cancelled context yields nothing.
	if s.stats.Nodes&15 == 1 {
		if err := s.ctx.Err(); err != nil {
			s.ctxErr = err
			return false
		}
	}
	saved := append([]truthValue(nil), s.assign...)
	ok, conflict := s.propagate()
	if conflict {
		s.stats.Conflicts++
		copy(s.assign, saved)
		return true // dead branch, keep searching elsewhere
	}
	_ = ok
	branch := s.pickUnknown()
	if branch < 0 {
		// Total assignment: final stability check.
		s.stats.Checks++
		if s.isStable() {
			if !s.visit(s.currentModel()) {
				copy(s.assign, saved)
				return false
			}
		}
		copy(s.assign, saved)
		return true
	}
	// Branch true then false.
	s.assign[branch] = tvTrue
	if !s.dfs() {
		copy(s.assign, saved)
		return false
	}
	s.assign[branch] = tvFalse
	if !s.dfs() {
		copy(s.assign, saved)
		return false
	}
	copy(s.assign, saved)
	return true
}

// propagate applies sound three-valued inference until fixpoint:
//
//  1. rule with satisfied body and all disjuncts but one falsified →
//     the remaining disjunct's atoms are true (for constraints, a
//     satisfied body is a conflict);
//  2. an atom with no rule that can still support it is false.
//
// It reports (changed, conflict).
func (s *solver) propagate() (bool, bool) {
	changedAny := false
	for {
		changed := false
		// (1) Forward / head forcing.
		for _, r := range s.p.Rules {
			bodySat := true
			bodyFalsified := false
			for _, b := range r.Pos {
				switch s.assign[b] {
				case tvFalse:
					bodyFalsified = true
				case tvUnknown:
					bodySat = false
				}
			}
			for _, n := range r.Neg {
				switch s.assign[n] {
				case tvTrue:
					bodyFalsified = true
				case tvUnknown:
					bodySat = false
				}
			}
			if bodyFalsified || !bodySat {
				continue
			}
			// Body is definitely satisfied.
			if r.IsConstraint() {
				return changedAny, true
			}
			viable := 0
			lastViable := -1
			satisfied := false
			for di, d := range r.Disjuncts {
				allTrue, anyFalse := true, false
				for _, a := range d {
					switch s.assign[a] {
					case tvFalse:
						anyFalse = true
						allTrue = false
					case tvUnknown:
						allTrue = false
					}
				}
				if allTrue {
					satisfied = true
					break
				}
				if !anyFalse {
					viable++
					lastViable = di
				}
			}
			if satisfied {
				continue
			}
			if viable == 0 {
				return changedAny, true // body true, no disjunct satisfiable
			}
			if viable == 1 {
				for _, a := range r.Disjuncts[lastViable] {
					if s.assign[a] == tvUnknown {
						s.assign[a] = tvTrue
						changed = true
					}
				}
			}
		}
		// (2) Unsupported atoms become false.
		supported := make([]bool, s.p.NAtoms)
		for _, r := range s.p.Rules {
			bodyFalsified := false
			for _, b := range r.Pos {
				if s.assign[b] == tvFalse {
					bodyFalsified = true
					break
				}
			}
			if !bodyFalsified {
				for _, n := range r.Neg {
					if s.assign[n] == tvTrue {
						bodyFalsified = true
						break
					}
				}
			}
			if bodyFalsified {
				continue
			}
			for _, d := range r.Disjuncts {
				anyFalse := false
				for _, a := range d {
					if s.assign[a] == tvFalse {
						anyFalse = true
						break
					}
				}
				if anyFalse {
					continue
				}
				for _, a := range d {
					supported[a] = true
				}
			}
		}
		for a := 0; a < s.p.NAtoms; a++ {
			if !supported[a] {
				switch s.assign[a] {
				case tvTrue:
					return changedAny, true
				case tvUnknown:
					s.assign[a] = tvFalse
					changed = true
				}
			}
		}
		if !changed {
			return changedAny, false
		}
		changedAny = true
	}
}

func (s *solver) pickUnknown() int {
	for a := 0; a < s.p.NAtoms; a++ {
		if s.assign[a] == tvUnknown {
			return a
		}
	}
	return -1
}

func (s *solver) currentModel() Model {
	var m Model
	for a := 0; a < s.p.NAtoms; a++ {
		if s.assign[a] == tvTrue {
			m = append(m, a)
		}
	}
	return m
}

// isStable checks the Gelfond–Lifschitz condition on the current total
// assignment: the candidate must satisfy every rule classically, and
// must be a minimal model of the reduct. For normal programs minimality
// is equivalent to "least model of the reduct equals the candidate";
// for disjunctive programs a SAT-based proper-subset search is used
// (see minimal.go).
func (s *solver) isStable() bool {
	m := s.currentModel()
	if !satisfiesAll(s.p, m) {
		return false
	}
	if s.p.IsNormal() {
		lm := reductLeastModel(s.p, m)
		return NewModel(lm).Equal(m)
	}
	return IsMinimalReductModel(s.p, m)
}

// satisfiesAll reports whether m is a classical model of the program
// (negation read as complement).
func satisfiesAll(p *Program, m Model) bool {
	in := make([]bool, p.NAtoms)
	for _, a := range m {
		in[a] = true
	}
	for _, r := range p.Rules {
		bodyTrue := true
		for _, b := range r.Pos {
			if !in[b] {
				bodyTrue = false
				break
			}
		}
		if bodyTrue {
			for _, n := range r.Neg {
				if in[n] {
					bodyTrue = false
					break
				}
			}
		}
		if !bodyTrue {
			continue
		}
		if r.IsConstraint() {
			return false
		}
		sat := false
		for _, d := range r.Disjuncts {
			all := true
			for _, a := range d {
				if !in[a] {
					all = false
					break
				}
			}
			if all {
				sat = true
				break
			}
		}
		if !sat {
			return false
		}
	}
	return true
}

// reductLeastModel forward-chains the reduct P^m of a normal program.
func reductLeastModel(p *Program, m Model) []int {
	in := make([]bool, p.NAtoms)
	for _, a := range m {
		in[a] = true
	}
	out := make([]bool, p.NAtoms)
	for changed := true; changed; {
		changed = false
		for _, r := range p.Rules {
			if r.IsConstraint() {
				continue
			}
			blocked := false
			for _, n := range r.Neg {
				if in[n] {
					blocked = true
					break
				}
			}
			if blocked {
				continue
			}
			fire := true
			for _, b := range r.Pos {
				if !out[b] {
					fire = false
					break
				}
			}
			if !fire {
				continue
			}
			for _, h := range r.Disjuncts[0] {
				if !out[h] {
					out[h] = true
					changed = true
				}
			}
		}
	}
	var lm []int
	for a := 0; a < p.NAtoms; a++ {
		if out[a] {
			lm = append(lm, a)
		}
	}
	return lm
}
