package asp

import (
	"ntgd/internal/sat"
)

// IsMinimalReductModel reports whether m (already known to be a
// classical model of the program) is a ⊆-minimal model of the reduct
// P^m. This is the disjunctive stable model condition; the check is
// coNP-complete in general, so it is delegated to the SAT solver: we
// ask for a model J ⊊ m of the reduct and report minimality iff none
// exists.
func IsMinimalReductModel(p *Program, m Model) bool {
	in := make([]bool, p.NAtoms)
	for _, a := range m {
		in[a] = true
	}
	if len(m) == 0 {
		return true
	}
	s := sat.New()
	// One SAT variable per true atom; atoms outside m are false in J.
	varOf := make([]int, p.NAtoms)
	for _, a := range m {
		varOf[a] = s.NewVar()
	}
	for _, r := range p.Rules {
		// Reduct: drop rules blocked by a negative literal in m.
		blocked := false
		for _, n := range r.Neg {
			if in[n] {
				blocked = true
				break
			}
		}
		if blocked {
			continue
		}
		// If a positive body atom is outside m, the body is false in
		// every J ⊆ m.
		bodyPossible := true
		for _, b := range r.Pos {
			if !in[b] {
				bodyPossible = false
				break
			}
		}
		if !bodyPossible {
			continue
		}
		// Clause: (∧ body) → (∨ viable disjuncts), with one auxiliary
		// variable per viable disjunct (aux → every atom of the
		// disjunct).
		clause := make([]int, 0, len(r.Pos)+len(r.Disjuncts))
		for _, b := range r.Pos {
			clause = append(clause, -varOf[b])
		}
		for _, d := range r.Disjuncts {
			viable := true
			for _, a := range d {
				if !in[a] {
					viable = false
					break
				}
			}
			if !viable {
				continue
			}
			if len(d) == 1 {
				clause = append(clause, varOf[d[0]])
				continue
			}
			aux := s.NewVar()
			clause = append(clause, aux)
			for _, a := range d {
				s.AddClause(-aux, varOf[a])
			}
		}
		s.AddClause(clause...)
	}
	// Proper subset: at least one atom of m is dropped.
	drop := make([]int, 0, len(m))
	for _, a := range m {
		drop = append(drop, -varOf[a])
	}
	s.AddClause(drop...)
	return !s.Solve()
}
