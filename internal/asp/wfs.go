package asp

import "fmt"

// WFSResult is the well-founded model of a normal program: the sets of
// well-founded true and false atoms; everything else is undefined.
type WFSResult struct {
	True      []int
	False     []int
	Undefined []int
	trueSet   []bool
	falseSet  []bool
}

// IsTrue reports whether the atom is well-founded true.
func (w *WFSResult) IsTrue(id int) bool { return w.trueSet[id] }

// IsFalse reports whether the atom is well-founded false.
func (w *WFSResult) IsFalse(id int) bool { return w.falseSet[id] }

// WellFounded computes the well-founded model of a normal program via
// the alternating fixpoint of Van Gelder: with Γ(S) the least model of
// the reduct P^S, the sequence U₀=∅, Vᵢ=Γ(Uᵢ), Uᵢ₊₁=Γ(Vᵢ) converges;
// lfp(Γ²) is the set of well-founded true atoms and the complement of
// gfp(Γ²) the well-founded false ones. Constraints and disjunctions
// are rejected.
func WellFounded(p *Program) (*WFSResult, error) {
	for i, r := range p.Rules {
		if len(r.Disjuncts) > 1 {
			return nil, fmt.Errorf("asp: well-founded semantics is defined for normal programs (rule %d is disjunctive)", i)
		}
		if r.IsConstraint() {
			return nil, fmt.Errorf("asp: well-founded semantics does not support constraints (rule %d)", i)
		}
	}
	ev := newGammaEval(p)
	u := make([]bool, p.NAtoms) // under-approximation of true atoms
	v := ev.gamma(u)            // over-approximation
	for {
		u2 := ev.gamma(v)
		v2 := ev.gamma(u2)
		if boolsEqual(u, u2) && boolsEqual(v, v2) {
			break
		}
		u, v = u2, v2
	}
	res := &WFSResult{trueSet: u, falseSet: make([]bool, p.NAtoms)}
	for a := 0; a < p.NAtoms; a++ {
		switch {
		case u[a]:
			res.True = append(res.True, a)
		case !v[a]:
			res.falseSet[a] = true
			res.False = append(res.False, a)
		default:
			res.Undefined = append(res.Undefined, a)
		}
	}
	return res, nil
}

// gammaEval computes least models of reducts P^S by delta-driven
// (semi-naive) propagation instead of scanning every rule until no
// pass changes anything: occurrence lists map each atom to the rules
// whose positive body mentions it (once per occurrence), a counter per
// rule tracks how many positive body atoms are still unsatisfied, and
// a worklist of newly derived atoms drives the counters to zero. One
// evaluator is built per WellFounded call and reused across the
// alternating-fixpoint iterations.
type gammaEval struct {
	p   *Program
	occ [][]int32 // atom -> indices of rules with that atom in Pos (per occurrence)
}

func newGammaEval(p *Program) *gammaEval {
	ev := &gammaEval{p: p, occ: make([][]int32, p.NAtoms)}
	for ri, r := range p.Rules {
		for _, b := range r.Pos {
			ev.occ[b] = append(ev.occ[b], int32(ri))
		}
	}
	return ev
}

// gamma computes the least model of the reduct P^S: drop rules with a
// negative literal whose atom is in S, strip negative literals, and
// forward-chain. gammaNaive is the scan-until-fixpoint original, kept
// as the differential-test oracle.
func (ev *gammaEval) gamma(s []bool) []bool {
	p := ev.p
	out := make([]bool, p.NAtoms)
	remaining := make([]int32, len(p.Rules))
	var queue []int32
	fire := func(ri int32) {
		for _, h := range p.Rules[ri].Disjuncts[0] {
			if !out[h] {
				out[h] = true
				queue = append(queue, int32(h))
			}
		}
	}
	for ri := range p.Rules {
		r := &p.Rules[ri]
		blocked := false
		for _, n := range r.Neg {
			if s[n] {
				blocked = true
				break
			}
		}
		if blocked {
			remaining[ri] = -1
			continue
		}
		remaining[ri] = int32(len(r.Pos))
		if remaining[ri] == 0 {
			fire(int32(ri))
		}
	}
	for len(queue) > 0 {
		a := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, ri := range ev.occ[a] {
			if remaining[ri] <= 0 {
				continue // blocked, or already fired
			}
			remaining[ri]--
			if remaining[ri] == 0 {
				fire(ri)
			}
		}
	}
	return out
}

func gammaNaive(p *Program, s []bool) []bool {
	out := make([]bool, p.NAtoms)
	for changed := true; changed; {
		changed = false
		for _, r := range p.Rules {
			blocked := false
			for _, n := range r.Neg {
				if s[n] {
					blocked = true
					break
				}
			}
			if blocked {
				continue
			}
			fire := true
			for _, b := range r.Pos {
				if !out[b] {
					fire = false
					break
				}
			}
			if !fire {
				continue
			}
			for _, h := range r.Disjuncts[0] {
				if !out[h] {
					out[h] = true
					changed = true
				}
			}
		}
	}
	return out
}

func boolsEqual(a, b []bool) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
