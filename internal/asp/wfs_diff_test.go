package asp

import (
	"math/rand"
	"testing"
)

// Pins the delta-driven (occurrence-list + counter) gamma evaluator to
// the scan-until-fixpoint oracle gammaNaive on random normal programs
// and random reduct contexts S.

func randNormalProgram(rng *rand.Rand) *Program {
	n := 2 + rng.Intn(12)
	p := &Program{NAtoms: n}
	for i, m := 0, 1+rng.Intn(20); i < m; i++ {
		r := Rule{Disjuncts: [][]int{{rng.Intn(n)}}}
		for k, b := 0, rng.Intn(3); k < b; k++ {
			r.Pos = append(r.Pos, rng.Intn(n))
		}
		for k, b := 0, rng.Intn(2); k < b; k++ {
			r.Neg = append(r.Neg, rng.Intn(n))
		}
		p.Rules = append(p.Rules, r)
	}
	return p
}

func TestGammaMatchesNaiveRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 500; trial++ {
		p := randNormalProgram(rng)
		ev := newGammaEval(p)
		for ctx := 0; ctx < 4; ctx++ {
			s := make([]bool, p.NAtoms)
			for i := range s {
				s[i] = rng.Intn(2) == 0
			}
			got := ev.gamma(s)
			want := gammaNaive(p, s)
			if !boolsEqual(got, want) {
				t.Fatalf("trial %d: gamma diverges\nprogram: %+v\ns: %v\ngot:  %v\nwant: %v", trial, p, s, got, want)
			}
		}
	}
}

// TestGammaDuplicateBodyAtoms: an atom occurring twice in a positive
// body must be counted per occurrence by the counter scheme.
func TestGammaDuplicateBodyAtoms(t *testing.T) {
	p := &Program{NAtoms: 2, Rules: []Rule{
		{Disjuncts: [][]int{{0}}},                   // fact 0
		{Pos: []int{0, 0}, Disjuncts: [][]int{{1}}}, // 0 ∧ 0 → 1
	}}
	got := newGammaEval(p).gamma(make([]bool, 2))
	if !got[0] || !got[1] {
		t.Fatalf("duplicate-occurrence rule did not fire: %v", got)
	}
}
