package asp

import (
	"fmt"
	"testing"
)

// choiceProgram builds n independent even loops (2^n stable models).
func choiceProgram(n int) *Program {
	p := &Program{NAtoms: 2 * n}
	for i := 0; i < n; i++ {
		a, bAtom := 2*i, 2*i+1
		p.Rules = append(p.Rules,
			Rule{Disjuncts: [][]int{{a}}, Neg: []int{bAtom}},
			Rule{Disjuncts: [][]int{{bAtom}}, Neg: []int{a}})
	}
	return p
}

func BenchmarkEnumerateChoices(b *testing.B) {
	for _, n := range []int{4, 8, 12} {
		p := choiceProgram(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				count := 0
				if _, err := Solve(p, SolveOptions{SeedWFS: true}, func(Model) bool {
					count++
					return true
				}); err != nil {
					b.Fatal(err)
				}
				if count != 1<<n {
					b.Fatalf("models=%d", count)
				}
			}
		})
	}
}

func BenchmarkWellFounded(b *testing.B) {
	// A long stratified chain: p0 <- not q0; q1 <- p0; ...
	n := 200
	p := &Program{NAtoms: 2 * n}
	p.Rules = append(p.Rules, Rule{Disjuncts: [][]int{{0}}})
	for i := 0; i+1 < n; i++ {
		p.Rules = append(p.Rules,
			Rule{Disjuncts: [][]int{{2 * (i + 1)}}, Pos: []int{2 * i}, Neg: []int{2*i + 1}})
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := WellFounded(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDisjunctiveMinimality(b *testing.B) {
	// Saturation-style program: the minimality check must call SAT.
	n := 6
	p := &Program{NAtoms: n + 1}
	w := n
	var disj [][]int
	for i := 0; i < n; i++ {
		disj = append(disj, []int{i})
	}
	p.Rules = append(p.Rules, Rule{Disjuncts: disj})
	for i := 0; i < n; i++ {
		p.Rules = append(p.Rules, Rule{Disjuncts: [][]int{{i}}, Pos: []int{w}})
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := AllModels(p, SolveOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
