package asp

import (
	"strings"
	"testing"
)

func TestProgramString(t *testing.T) {
	p := &Program{
		NAtoms: 3,
		Names:  []string{"a", "b", "c"},
		Rules: []Rule{
			{Disjuncts: [][]int{{0}}},                     // a.
			{Disjuncts: [][]int{{1}, {2}}, Pos: []int{0}}, // b | c :- a.
			{Pos: []int{1}, Neg: []int{2}},                // :- b, not c.
			{Disjuncts: [][]int{{1, 2}}, Neg: []int{0}},   // b, c :- not a.
		},
	}
	s := p.String()
	for _, frag := range []string{"a.", "b | c :- a.", ":- b, not c.", "b, c :- not a."} {
		if !strings.Contains(s, frag) {
			t.Fatalf("String() missing %q:\n%s", frag, s)
		}
	}
}

func TestAtomNameFallback(t *testing.T) {
	p := &Program{NAtoms: 2, Names: []string{"x", ""}}
	if p.AtomName(0) != "x" || p.AtomName(1) != "a1" {
		t.Fatalf("AtomName fallback wrong: %q %q", p.AtomName(0), p.AtomName(1))
	}
}

func TestModelHelpers(t *testing.T) {
	m := NewModel([]int{3, 1, 2})
	if !m.Has(2) || m.Has(0) {
		t.Fatalf("Has wrong")
	}
	if !m.Equal(NewModel([]int{1, 2, 3})) || m.Equal(NewModel([]int{1, 2})) {
		t.Fatalf("Equal wrong")
	}
	p := &Program{NAtoms: 4, Names: []string{"w", "x", "y", "z"}}
	if got := m.String(p); got != "{x, y, z}" {
		t.Fatalf("Model.String = %q", got)
	}
}

func TestRuleClassifiers(t *testing.T) {
	if !(Rule{Pos: []int{0}}).IsConstraint() {
		t.Fatalf("constraint not recognized")
	}
	if !(Rule{Disjuncts: [][]int{{0}}}).IsFact() {
		t.Fatalf("fact not recognized")
	}
	if (Rule{Disjuncts: [][]int{{0}}, Pos: []int{1}}).IsFact() {
		t.Fatalf("rule with body is not a fact")
	}
}

func TestSolverNodeBudget(t *testing.T) {
	// A large choice program with a 1-node budget must report
	// ErrBudget.
	p := choiceProgram(10)
	_, err := Solve(p, SolveOptions{MaxNodes: 1}, func(Model) bool { return true })
	if err != ErrBudget {
		t.Fatalf("expected ErrBudget, got %v", err)
	}
}
