//go:build failpoint

package failpoint

import (
	"sync"
	"testing"
)

func mustTrip(t *testing.T, name string) (tripped bool) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			p, ok := r.(Panic)
			if !ok || p.Site != name {
				t.Fatalf("unexpected panic value %v", r)
			}
			tripped = true
		}
	}()
	Inject(name)
	return false
}

func TestArmFiresExactlyOnce(t *testing.T) {
	defer Reset()
	Arm(CoreFork, 3)
	if mustTrip(t, CoreFork) || mustTrip(t, CoreFork) {
		t.Fatalf("fired before countdown reached zero")
	}
	if !mustTrip(t, CoreFork) {
		t.Fatalf("did not fire on the armed call")
	}
	if mustTrip(t, CoreFork) {
		t.Fatalf("fired twice for a one-shot arming")
	}
	if Fired(CoreFork) != 1 {
		t.Fatalf("Fired = %d, want 1", Fired(CoreFork))
	}
}

func TestArmProbEventuallyFires(t *testing.T) {
	defer Reset()
	ArmProb(CoreSink, 0.5, 42)
	fired := 0
	for i := 0; i < 64; i++ {
		if mustTrip(t, CoreSink) {
			fired++
		}
	}
	if fired == 0 || fired == 64 {
		t.Fatalf("p=0.5 over 64 draws fired %d times", fired)
	}
	if Fired(CoreSink) != fired {
		t.Fatalf("Fired = %d, want %d", Fired(CoreSink), fired)
	}
	Disarm(CoreSink)
	if mustTrip(t, CoreSink) {
		t.Fatalf("fired after Disarm")
	}
	if Fired(CoreSink) != fired {
		t.Fatalf("Disarm cleared the fired count")
	}
}

func TestArmSpecGrammar(t *testing.T) {
	defer Reset()
	if err := armSpec("core/fork=2; sat/propagate=p0.25 ;;", 7); err != nil {
		t.Fatalf("armSpec: %v", err)
	}
	if mustTrip(t, CoreFork) {
		t.Fatalf("countdown=2 fired on first call")
	}
	if !mustTrip(t, CoreFork) {
		t.Fatalf("countdown=2 did not fire on second call")
	}
	for _, bad := range []string{"core/fork", "core/fork=x", "core/fork=pzero"} {
		if err := armSpec(bad, 1); err == nil {
			t.Fatalf("armSpec(%q) accepted a malformed spec", bad)
		}
	}
}

func TestInjectConcurrentSafety(t *testing.T) {
	defer Reset()
	ArmProb(ChaseRound, 0.1, 99)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				func() {
					defer func() { recover() }()
					Inject(ChaseRound)
				}()
			}
		}()
	}
	wg.Wait()
	if Fired(ChaseRound) == 0 {
		t.Fatalf("no trips across 1600 draws at p=0.1")
	}
}

func TestSitesListsEveryConstant(t *testing.T) {
	want := map[string]bool{
		CoreFork: true, CoreSink: true, CoreStability: true,
		SatPropagate: true, ChaseRound: true, StoreSnapshot: true, StoreFlatten: true,
		ServerHandler: true, ServerShed: true,
	}
	got := Sites()
	if len(got) != len(want) {
		t.Fatalf("Sites() has %d entries, want %d", len(got), len(want))
	}
	for _, s := range got {
		if !want[s] {
			t.Fatalf("Sites() lists unknown site %q", s)
		}
	}
}
