//go:build !failpoint

package failpoint

import "testing"

// Without the failpoint build tag the whole API must be inert: arming
// is a no-op and Inject never panics, so production binaries cannot be
// destabilized by a stray NTGD_FAILPOINTS in the environment.
func TestInjectInertWithoutTag(t *testing.T) {
	if Enabled {
		t.Fatalf("Enabled must be false without the failpoint tag")
	}
	defer Reset()
	Arm(CoreFork, 1)
	ArmProb(CoreSink, 1.0, 1)
	for _, s := range Sites() {
		Inject(s) // must not panic
		if Fired(s) != 0 {
			t.Fatalf("Fired(%q) = %d without the tag", s, Fired(s))
		}
	}
}
