//go:build !failpoint

package failpoint

// Enabled reports whether fault injection is compiled in.
const Enabled = false

// Inject is a no-op in production builds; the call sites inline to
// nothing.
func Inject(site string) {}

// The arming API exists in both build modes so shared test helpers can
// compile without the tag; without it the calls are inert.

// Arm is a no-op without the failpoint build tag.
func Arm(site string, after int) {}

// ArmProb is a no-op without the failpoint build tag.
func ArmProb(site string, prob float64, seed int64) {}

// Disarm is a no-op without the failpoint build tag.
func Disarm(site string) {}

// Reset is a no-op without the failpoint build tag.
func Reset() {}

// Fired reports 0 without the failpoint build tag.
func Fired(site string) int { return 0 }
