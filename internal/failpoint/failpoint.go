// Package failpoint is a build-tag-gated fault-injection registry used
// by the chaos suite to fire panics at hardened recovery boundaries
// inside the engine. It exists so the robustness layer (worker-boundary
// recovery, typed ErrInternal, join-then-return discipline) can be
// exercised deterministically rather than hoping for organic bugs.
//
// The package has two build modes:
//
//   - Default (no tag): Inject is an empty function and Enabled reports
//     false. The call sites compile to nothing the branch predictor can
//     even see; the bench-diff gate pins that the production binary pays
//     no cost for the instrumentation.
//   - -tags failpoint: Inject consults a registry of armed sites and
//     panics with a failpoint.Panic value when a site trips. Sites are
//     armed programmatically (Arm, ArmProb) or via the NTGD_FAILPOINTS
//     environment variable at init; see inject_on.go.
//
// Site names are path-like strings owned by this package so the chaos
// suite and the injection sites cannot drift apart. Each constant
// documents the boundary it sits on.
package failpoint

// Canonical injection sites. Every site is inside code that the
// robustness layer promises to recover from: firing one must surface as
// a typed engine error (or a clean visitor unwind), never as a process
// crash, a wedged pool, or a leaked goroutine.
const (
	// CoreFork fires at the entry of a stable-model search worker
	// (sequential root and every forked pool goroutine alike).
	CoreFork = "core/fork"
	// CoreSink fires in the model sink (run.emit) before the dedup lock
	// is taken, so a fault never unwinds while holding run.mu.
	CoreSink = "core/sink"
	// CoreStability fires at the entry of a stability (minimality) SAT
	// solve on a candidate branch.
	CoreStability = "core/stability"
	// SatPropagate fires at the entry of CDCL unit propagation.
	SatPropagate = "sat/propagate"
	// ChaseRound fires at the top of each chase round (both the stable
	// search's budget probe and direct chase.RunCtx callers).
	ChaseRound = "chase/round"
	// StoreSnapshot fires when a copy-on-write FactStore snapshot is
	// taken (branch forks, model emission, budget probes).
	StoreSnapshot = "store/snapshot"
	// StoreFlatten fires when a snapshot chain is flattened (deep
	// chains past maxSnapshotDepth, clones of snapshots).
	StoreFlatten = "store/flatten"
	// ServerHandler fires inside an ntgdd request handler after the
	// request has been decoded but before the engine runs. It is only
	// reachable through internal/server (not the bare Solver); the
	// server's own chaos suite covers it, and the Solver-level
	// site-by-site suite skips it.
	ServerHandler = "server/handler"
	// ServerShed fires on the ntgdd shed path — while writing a 429 or
	// 503 refusal (queue-full, deadline-hopeless, draining, or
	// memory-pressure brownout) — before any byte of the response is
	// written. A fault here must still answer a typed error: the shed
	// path is exactly what runs when the daemon is already in trouble.
	// Like ServerHandler it is only reachable through internal/server.
	ServerShed = "server/shed"
)

// Sites lists every canonical injection site; the chaos suite iterates
// it so a newly added site cannot silently escape coverage.
func Sites() []string {
	return []string{
		CoreFork,
		CoreSink,
		CoreStability,
		SatPropagate,
		ChaseRound,
		StoreSnapshot,
		StoreFlatten,
		ServerHandler,
		ServerShed,
	}
}

// Panic is the value thrown by a tripped failpoint. Recovery layers may
// inspect it (the chaos suite asserts the site round-trips through
// engine.InternalError), but production code must treat it like any
// other panic value: recover, type the error, join the workers.
type Panic struct{ Site string }

func (p Panic) String() string { return "failpoint tripped: " + p.Site }
