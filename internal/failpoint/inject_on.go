//go:build failpoint

package failpoint

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync"
)

// Enabled reports whether fault injection is compiled in.
const Enabled = true

type site struct {
	// countdown: fire (once) on the Nth Inject after arming; 0 = not
	// count-armed.
	countdown int
	// prob: fire with this probability on every Inject; 0 = not
	// probability-armed.
	prob float64
	rng  *rand.Rand
	// fired counts trips since the site was last armed or Reset.
	fired int
}

var (
	mu    sync.Mutex
	sites = map[string]*site{}
)

func init() {
	// NTGD_FAILPOINTS arms sites at process start, e.g.
	//   NTGD_FAILPOINTS="core/fork=1;sat/propagate=p0.01"
	// "<site>=<n>" fires once on the nth Inject; "<site>=p<f>" fires
	// with probability f on every Inject. NTGD_FAILPOINT_SEED seeds the
	// probability draws (default 1).
	spec := os.Getenv("NTGD_FAILPOINTS")
	if spec == "" {
		return
	}
	seed := int64(1)
	if s := os.Getenv("NTGD_FAILPOINT_SEED"); s != "" {
		if v, err := strconv.ParseInt(s, 10, 64); err == nil {
			seed = v
		}
	}
	if err := armSpec(spec, seed); err != nil {
		fmt.Fprintf(os.Stderr, "failpoint: ignoring bad NTGD_FAILPOINTS: %v\n", err)
	}
}

// armSpec parses and applies a ";"-separated arming spec. Exposed to
// tests of the env grammar; callers outside init should use Arm/ArmProb.
func armSpec(spec string, seed int64) error {
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return fmt.Errorf("%q: want site=n or site=p<f>", part)
		}
		if p, isProb := strings.CutPrefix(val, "p"); isProb {
			f, err := strconv.ParseFloat(p, 64)
			if err != nil {
				return fmt.Errorf("%q: bad probability: %v", part, err)
			}
			ArmProb(name, f, seed)
			continue
		}
		n, err := strconv.Atoi(val)
		if err != nil {
			return fmt.Errorf("%q: bad countdown: %v", part, err)
		}
		Arm(name, n)
	}
	return nil
}

// Inject panics with Panic{site} when the named site is armed and
// trips. It is safe to call from any goroutine.
func Inject(name string) {
	mu.Lock()
	s := sites[name]
	if s == nil {
		mu.Unlock()
		return
	}
	trip := false
	if s.countdown > 0 {
		s.countdown--
		trip = s.countdown == 0
	} else if s.prob > 0 && s.rng.Float64() < s.prob {
		trip = true
	}
	if trip {
		s.fired++
	}
	mu.Unlock()
	if trip {
		panic(Panic{Site: name})
	}
}

// Arm makes the named site fire exactly once, on the after-th Inject
// from now (after=1 fires on the next call). It replaces any previous
// arming of the site.
func Arm(name string, after int) {
	if after <= 0 {
		after = 1
	}
	mu.Lock()
	sites[name] = &site{countdown: after}
	mu.Unlock()
}

// ArmProb makes the named site fire with the given probability on each
// Inject, drawing from a rand.Rand seeded with seed. It replaces any
// previous arming of the site.
func ArmProb(name string, prob float64, seed int64) {
	mu.Lock()
	sites[name] = &site{prob: prob, rng: rand.New(rand.NewSource(seed))}
	mu.Unlock()
}

// Disarm deactivates the named site, keeping its fired count readable
// until Reset.
func Disarm(name string) {
	mu.Lock()
	if s := sites[name]; s != nil {
		s.countdown, s.prob = 0, 0
	}
	mu.Unlock()
}

// Reset disarms every site and clears all fired counts.
func Reset() {
	mu.Lock()
	sites = map[string]*site{}
	mu.Unlock()
}

// Fired reports how many times the named site has tripped since it was
// last armed (or since Reset).
func Fired(name string) int {
	mu.Lock()
	defer mu.Unlock()
	if s := sites[name]; s != nil {
		return s.fired
	}
	return 0
}
