package chase_test

import (
	"fmt"
	"testing"

	"ntgd/internal/chase"
	"ntgd/internal/logic"
	"ntgd/internal/parser"
)

func BenchmarkRestrictedChaseLinear(b *testing.B) {
	for _, n := range []int{16, 64, 256, 1024, 4096} {
		src := ""
		for i := 0; i < n; i++ {
			src += fmt.Sprintf("emp(e%d).\n", i)
		}
		src += "emp(X) -> dept(X,D).\ndept(X,D) -> org(D).\n"
		prog := parser.MustParse(src)
		db := prog.Database()
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := chase.Run(db, prog.Rules, chase.Options{})
				if err != nil || res.Instance.Len() != 3*n {
					b.Fatalf("size=%d err=%v", res.Instance.Len(), err)
				}
			}
		})
	}
}

// BenchmarkTransitiveClosureChase is the multi-round delta workload:
// closing a chain of n edges takes O(log n) rounds and derives
// n(n+1)/2 atoms, so recompute-everything trigger detection is
// quadratic in the result per round while semi-naive seeding touches
// each derived atom a constant number of times.
func BenchmarkTransitiveClosureChase(b *testing.B) {
	for _, n := range []int{64, 128} {
		db := logic.NewFactStore()
		for i := 0; i < n; i++ {
			db.Add(logic.A("e", logic.C(fmt.Sprintf("v%d", i)), logic.C(fmt.Sprintf("v%d", i+1))))
		}
		tc := logic.NewRule("tc",
			[]logic.Literal{
				logic.Pos(logic.A("e", logic.V("X"), logic.V("Y"))),
				logic.Pos(logic.A("e", logic.V("Y"), logic.V("Z"))),
			},
			[]logic.Atom{logic.A("e", logic.V("X"), logic.V("Z"))})
		rules := []*logic.Rule{tc}
		want := n * (n + 1) / 2
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := chase.Run(db, rules, chase.Options{})
				if err != nil || res.Instance.Len() != want {
					b.Fatalf("size=%d err=%v", res.Instance.Len(), err)
				}
			}
		})
	}
}

func BenchmarkObliviousVsRestricted(b *testing.B) {
	src := `
person(p1). person(p2). person(p3). person(p4).
knows(p1,p2). knows(p2,p3). knows(p3,p4).
person(X) -> hasID(X,I).
knows(X,Y) -> knows(Y,X).
`
	prog := parser.MustParse(src)
	db := prog.Database()
	for _, variant := range []chase.Variant{chase.Restricted, chase.Oblivious} {
		variant := variant
		b.Run(variant.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := chase.Run(db, prog.Rules, chase.Options{Variant: variant}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
