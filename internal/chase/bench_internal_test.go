package chase

import (
	"fmt"
	"testing"

	"ntgd/internal/logic"
)

// BenchmarkSemiNaiveVsNaiveRounds compares the shipping semi-naive
// round loop against the recompute-everything oracle on the
// multi-round transitive-closure workload (white-box: runNaive is
// package-private).
func BenchmarkSemiNaiveVsNaiveRounds(b *testing.B) {
	for _, n := range []int{64, 128} {
		db := logic.NewFactStore()
		for i := 0; i < n; i++ {
			db.Add(logic.A("e", logic.C(fmt.Sprintf("v%d", i)), logic.C(fmt.Sprintf("v%d", i+1))))
		}
		tc := logic.NewRule("tc",
			[]logic.Literal{
				logic.Pos(logic.A("e", logic.V("X"), logic.V("Y"))),
				logic.Pos(logic.A("e", logic.V("Y"), logic.V("Z"))),
			},
			[]logic.Atom{logic.A("e", logic.V("X"), logic.V("Z"))})
		rules := []*logic.Rule{tc}
		want := n * (n + 1) / 2
		for _, eng := range []struct {
			name string
			run  func(*logic.FactStore, []*logic.Rule, Options) (*Result, error)
		}{{"seminaive", Run}, {"naive", runNaive}} {
			b.Run(fmt.Sprintf("%s/n=%d", eng.name, n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					res, err := eng.run(db, rules, Options{})
					if err != nil || res.Instance.Len() != want {
						b.Fatalf("size=%d err=%v", res.Instance.Len(), err)
					}
				}
			})
		}
	}
}
