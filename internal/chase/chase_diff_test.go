package chase

import (
	"fmt"
	"math/rand"
	"testing"

	"ntgd/internal/logic"
)

// This file pins the semi-naive chase (Run, delta-seeded trigger
// detection via logic.FindHomsFrom) to the recompute-everything oracle
// (runNaive) on randomized terminating programs and databases. The two
// engines may enumerate a round's triggers in different orders, so
// instances are compared up to homomorphic equivalence (the standard
// chase-equivalence notion); for the oblivious chase, which applies
// every trigger exactly once, the trigger count and instance size must
// also agree exactly.

// randTGDProgram generates a terminating set of plain TGDs over a
// layered vocabulary: base predicate e/2 plus derived d0..d3 (arity 2).
// Datalog rules only feed lower layers into strictly higher ones, and
// rules with an existential head variable target the sink predicate
// out/2 (never used in a body), so every chase reaches a fixpoint.
func randTGDProgram(rng *rand.Rand) (db *logic.FactStore, rules []*logic.Rule) {
	db = logic.NewFactStore()
	nconst := 3 + rng.Intn(4)
	for i, n := 0, 4+rng.Intn(8); i < n; i++ {
		db.Add(logic.A("e",
			logic.C(fmt.Sprintf("c%d", rng.Intn(nconst))),
			logic.C(fmt.Sprintf("c%d", rng.Intn(nconst)))))
	}
	vars := []string{"X", "Y", "Z"}
	layerPred := func(layer int) string {
		if layer == 0 {
			return "e"
		}
		return fmt.Sprintf("d%d", layer-1)
	}
	nrules := 2 + rng.Intn(4)
	for i := 0; i < nrules; i++ {
		headLayer := 1 + rng.Intn(4)
		var body []logic.Literal
		for k, n := 0, 1+rng.Intn(2); k < n; k++ {
			body = append(body, logic.Pos(logic.A(
				layerPred(rng.Intn(headLayer)),
				logic.V(vars[rng.Intn(len(vars))]),
				logic.V(vars[rng.Intn(len(vars))]))))
		}
		bodyVars := logic.VarSet()
		for _, l := range body {
			for v := range logic.VarSet(l.Atom) {
				bodyVars[v] = true
			}
		}
		pick := func() logic.Term {
			for _, v := range vars {
				if bodyVars[v] {
					return logic.V(v)
				}
			}
			return logic.C("c0")
		}
		var head logic.Atom
		if rng.Intn(4) == 0 {
			// Existential rule into the sink: W is fresh.
			head = logic.A("out", pick(), logic.V("W"))
		} else {
			args := []logic.Term{pick(), pick()}
			if bodyVars["Y"] {
				args[1] = logic.V("Y")
			}
			head = logic.A(layerPred(headLayer), args[0], args[1])
		}
		rules = append(rules, logic.NewRule(fmt.Sprintf("r%d", i), body, []logic.Atom{head}))
	}
	return db, rules
}

func homEquivalent(a, b *logic.FactStore) bool {
	return logic.MapsTo(a.Atoms(), b) && logic.MapsTo(b.Atoms(), a)
}

func TestSemiNaiveChaseMatchesNaiveRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 150; trial++ {
		db, rules := randTGDProgram(rng)
		for _, variant := range []Variant{Restricted, Oblivious} {
			opt := Options{Variant: variant, MaxAtoms: 4096, MaxRounds: 64}
			got, errGot := Run(db, rules, opt)
			want, errWant := runNaive(db, rules, opt)
			if (errGot == nil) != (errWant == nil) {
				t.Fatalf("trial %d %v: error divergence: semi-naive=%v naive=%v", trial, variant, errGot, errWant)
			}
			if errGot != nil {
				continue // both hit the budget; partial instances are order-dependent
			}
			if !homEquivalent(got.Instance, want.Instance) {
				t.Fatalf("trial %d %v: instances not homomorphically equivalent\nsemi-naive (%d): %s\nnaive (%d): %s",
					trial, variant, got.Instance.Len(), got.Instance.CanonicalString(),
					want.Instance.Len(), want.Instance.CanonicalString())
			}
			if variant == Oblivious {
				if got.Applications != want.Applications || got.Instance.Len() != want.Instance.Len() {
					t.Fatalf("trial %d oblivious: applications %d vs %d, size %d vs %d",
						trial, got.Applications, want.Applications,
						got.Instance.Len(), want.Instance.Len())
				}
			}
		}
	}
}

// TestSemiNaiveChaseDatalogExact: on existential-free programs the
// chase result is a plain least fixpoint, so the two engines must
// agree syntactically, not just up to homomorphism.
func TestSemiNaiveChaseDatalogExact(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 150; trial++ {
		db, all := randTGDProgram(rng)
		var rules []*logic.Rule
		for _, r := range all {
			if !r.HasExistentials() {
				rules = append(rules, r)
			}
		}
		opt := Options{MaxAtoms: 4096, MaxRounds: 64}
		got, errGot := Run(db, rules, opt)
		want, errWant := runNaive(db, rules, opt)
		if errGot != nil || errWant != nil {
			t.Fatalf("trial %d: unexpected errors %v / %v", trial, errGot, errWant)
		}
		if !got.Instance.Equal(want.Instance) {
			t.Fatalf("trial %d: datalog chase diverges\nsemi-naive: %s\nnaive: %s",
				trial, got.Instance.CanonicalString(), want.Instance.CanonicalString())
		}
	}
}

// TestSemiNaiveTransitiveClosureRounds: a multi-round closure chase
// reaches the same fixpoint with the same round count as the oracle.
func TestSemiNaiveTransitiveClosureRounds(t *testing.T) {
	db := logic.NewFactStore()
	n := 24
	for i := 0; i < n; i++ {
		db.Add(logic.A("e", logic.C(fmt.Sprintf("v%d", i)), logic.C(fmt.Sprintf("v%d", i+1))))
	}
	tc := logic.NewRule("tc",
		[]logic.Literal{logic.Pos(logic.A("e", logic.V("X"), logic.V("Y"))), logic.Pos(logic.A("e", logic.V("Y"), logic.V("Z")))},
		[]logic.Atom{logic.A("e", logic.V("X"), logic.V("Z"))})
	got, err := Run(db, []*logic.Rule{tc}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := runNaive(db, []*logic.Rule{tc}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Instance.Equal(want.Instance) {
		t.Fatalf("closure instances differ: %d vs %d atoms", got.Instance.Len(), want.Instance.Len())
	}
	if wantLen := n * (n + 1) / 2; got.Instance.Len() != wantLen {
		t.Fatalf("closure size = %d, want %d", got.Instance.Len(), wantLen)
	}
	if got.Rounds != want.Rounds {
		t.Fatalf("rounds differ: semi-naive %d vs naive %d", got.Rounds, want.Rounds)
	}
}
