// Package chase implements the chase procedure for (negation-free,
// non-disjunctive) TGDs: the restricted (standard) chase, which applies
// a trigger only when its head is not already satisfied, and the
// oblivious chase, which applies every trigger once. The chase is the
// classical tool the paper builds on: Lemma 8 bounds the immediate
// consequence operator by the size of an induced chase sequence, the
// weakly-acyclic termination argument of Fagin et al. underlies
// Theorem 3, and the operational stable model semantics of Baget et al.
// (discussed in the introduction) is a chase whose TGD applications are
// blocked by negative literals.
package chase

import (
	"context"
	"errors"
	"fmt"
	"strconv"

	"ntgd/internal/failpoint"
	"ntgd/internal/logic"
)

// Variant selects the chase flavour.
type Variant int

const (
	// Restricted applies a trigger only if no extension of the body
	// homomorphism satisfies the head (the paper's footnote 4: "the
	// standard (a.k.a. the restricted) version of the chase, where a
	// TGD is being applied only if it is necessary").
	Restricted Variant = iota
	// Oblivious applies every trigger exactly once, inventing fresh
	// nulls regardless of head satisfaction. It terminates on weakly
	// acyclic sets and its result size upper-bounds every restricted
	// chase sequence, which is how the stable model engine derives its
	// default search budget.
	Oblivious
)

func (v Variant) String() string {
	if v == Oblivious {
		return "oblivious"
	}
	return "restricted"
}

// ErrBudget is returned when the chase exceeds its atom or round
// budget before reaching a fixpoint (e.g. on non-terminating inputs).
var ErrBudget = errors.New("chase: atom/round budget exhausted before fixpoint")

// Options configures a chase run. The zero value uses the restricted
// chase with generous defaults.
type Options struct {
	Variant Variant
	// MaxAtoms aborts the chase when the instance grows beyond this
	// many atoms (0 = 1<<20).
	MaxAtoms int
	// MaxRounds aborts after this many breadth-first rounds (0 = 1<<20).
	MaxRounds int
	// NullPrefix names invented nulls ("<prefix><counter>"); default "n".
	NullPrefix string
}

// Result is the outcome of a chase run.
type Result struct {
	// Instance is the chased instance (database plus derived atoms).
	Instance *logic.FactStore
	// Rounds is the number of breadth-first rounds executed.
	Rounds int
	// Applications is the number of trigger applications.
	Applications int
	// NullsInvented is the number of fresh labeled nulls created.
	NullsInvented int
}

// Run chases the database with the given TGDs. Rules must be
// negation-free and non-disjunctive; constraints are rejected too.
// ErrBudget is returned (with the partial instance) when the budget is
// exhausted.
//
// Trigger detection is semi-naive: after the first round, each rule's
// body homomorphisms are seeded from the delta of atoms added in the
// previous round (logic.FindHomsFrom), so a round costs O(new facts)
// instead of re-deriving every trigger from the whole instance. This
// is sound because the instance only grows: a trigger whose body lies
// entirely in old atoms was already detected (and either applied or
// head-satisfied, which is monotone) in an earlier round. runNaive
// keeps the recompute-everything loop as the differential-test oracle.
func Run(db *logic.FactStore, rules []*logic.Rule, opt Options) (*Result, error) {
	return RunCtx(context.Background(), db, rules, opt)
}

// RunCtx is Run with cancellation: the chase checks ctx between rounds
// and periodically between trigger applications, returning ctx.Err()
// alongside the partial instance when the context is cancelled or its
// deadline expires.
func RunCtx(ctx context.Context, db *logic.FactStore, rules []*logic.Rule, opt Options) (*Result, error) {
	for _, r := range rules {
		if !r.IsTGD() {
			return nil, fmt.Errorf("chase: rule %s is not a plain TGD (negation or disjunction present)", r.Label)
		}
	}
	if opt.MaxAtoms <= 0 {
		opt.MaxAtoms = 1 << 20
	}
	if opt.MaxRounds <= 0 {
		opt.MaxRounds = 1 << 20
	}
	if opt.NullPrefix == "" {
		opt.NullPrefix = "n"
	}

	res := &Result{Instance: db.Clone()}
	inst := res.Instance
	nullCtr := 0
	from := 0 // delta low-water mark: atoms ≥ from are new

	// One join-plan cache per rule body: the delta sweeps of every
	// round reuse the greedy selectivity order instead of re-planning
	// per call (see logic.BodyPlans).
	planners := make([]*logic.BodyPlans, len(rules))
	for i, r := range rules {
		planners[i] = logic.NewBodyPlans(r.PosBody(), nil)
	}

	// No "already fired" bookkeeping is needed for the oblivious
	// variant here: the delta windows of successive rounds partition
	// the store, so FindHomsFrom detects every (rule, homomorphism)
	// trigger exactly once across the whole run — in the round whose
	// delta contains the trigger's newest body atom. (runNaive, which
	// re-detects everything each round, keeps the applied map.)
	for res.Rounds = 0; res.Rounds < opt.MaxRounds; res.Rounds++ {
		failpoint.Inject(failpoint.ChaseRound)
		if err := ctx.Err(); err != nil {
			return res, err
		}
		type trigger struct {
			rule *logic.Rule
			hom  logic.Subst
		}
		var triggers []trigger
		for i, r := range rules {
			rule := r
			planners[i].FindHomsFrom(inst, from, logic.Subst{}, func(h logic.Subst) bool {
				if opt.Variant == Restricted {
					if logic.ExistsHom(rule.Heads[0], nil, inst, h) {
						return true // head satisfied: not a (restricted) trigger
					}
				}
				triggers = append(triggers, trigger{rule, h.Clone()})
				return true
			})
		}
		if len(triggers) == 0 {
			return res, nil
		}
		from = inst.Len()
		for _, t := range triggers {
			if res.Applications&63 == 0 {
				if err := ctx.Err(); err != nil {
					return res, err
				}
			}
			if opt.Variant == Restricted {
				// Another application this round may have satisfied it.
				if logic.ExistsHom(t.rule.Heads[0], nil, inst, t.hom) {
					continue
				}
			}
			mu := t.hom.Clone()
			for _, z := range t.rule.ExistVars(0) {
				nullCtr++
				res.NullsInvented++
				mu[z] = logic.N(opt.NullPrefix + strconv.Itoa(nullCtr))
			}
			for _, a := range t.rule.Heads[0] {
				inst.Add(mu.ApplyAtom(a))
			}
			res.Applications++
			if inst.Len() > opt.MaxAtoms {
				return res, ErrBudget
			}
		}
	}
	return res, ErrBudget
}

func triggerKey(r *logic.Rule, h logic.Subst) string {
	return r.Label + "|" + h.String()
}

// runNaive is the pre-semi-naive round loop kept as the
// differential-test oracle: every round re-derives all triggers from
// the whole instance. It detects the same trigger set per round as Run
// but may enumerate it in a different order, so results agree up to
// homomorphic equivalence (null renaming), not syntactically.
func runNaive(db *logic.FactStore, rules []*logic.Rule, opt Options) (*Result, error) {
	for _, r := range rules {
		if !r.IsTGD() {
			return nil, fmt.Errorf("chase: rule %s is not a plain TGD (negation or disjunction present)", r.Label)
		}
	}
	if opt.MaxAtoms <= 0 {
		opt.MaxAtoms = 1 << 20
	}
	if opt.MaxRounds <= 0 {
		opt.MaxRounds = 1 << 20
	}
	if opt.NullPrefix == "" {
		opt.NullPrefix = "n"
	}

	res := &Result{Instance: db.Clone()}
	inst := res.Instance
	nullCtr := 0
	applied := make(map[string]bool)

	for res.Rounds = 0; res.Rounds < opt.MaxRounds; res.Rounds++ {
		type trigger struct {
			rule *logic.Rule
			hom  logic.Subst
		}
		var triggers []trigger
		for _, r := range rules {
			rule := r
			logic.FindHoms(rule.PosBody(), nil, inst, logic.Subst{}, func(h logic.Subst) bool {
				switch opt.Variant {
				case Restricted:
					if logic.ExistsHom(rule.Heads[0], nil, inst, h) {
						return true
					}
				case Oblivious:
					if applied[triggerKey(rule, h)] {
						return true
					}
				}
				triggers = append(triggers, trigger{rule, h.Clone()})
				return true
			})
		}
		if len(triggers) == 0 {
			return res, nil
		}
		for _, t := range triggers {
			if opt.Variant == Restricted {
				if logic.ExistsHom(t.rule.Heads[0], nil, inst, t.hom) {
					continue
				}
			} else {
				key := triggerKey(t.rule, t.hom)
				if applied[key] {
					continue
				}
				applied[key] = true
			}
			mu := t.hom.Clone()
			for _, z := range t.rule.ExistVars(0) {
				nullCtr++
				res.NullsInvented++
				mu[z] = logic.N(opt.NullPrefix + strconv.Itoa(nullCtr))
			}
			for _, a := range t.rule.Heads[0] {
				inst.Add(mu.ApplyAtom(a))
			}
			res.Applications++
			if inst.Len() > opt.MaxAtoms {
				return res, ErrBudget
			}
		}
	}
	return res, ErrBudget
}

// CertainBCQ answers a Boolean conjunctive query under (positive) TGDs
// by chasing and evaluating the query over the (universal) result:
// (D,Σ) |= q iff q maps homomorphically into the chase. The query must
// be negation-free (certain answers under TGDs are defined for CQs).
func CertainBCQ(db *logic.FactStore, rules []*logic.Rule, q logic.Query, opt Options) (bool, error) {
	if len(q.Neg) != 0 {
		return false, fmt.Errorf("chase: CertainBCQ requires a negation-free query")
	}
	res, err := Run(db, rules, opt)
	if err != nil {
		return false, err
	}
	return logic.ExistsHom(q.Pos, nil, res.Instance, logic.Subst{}), nil
}

// BudgetForStableSearch returns the default atom budget the stable
// model engine uses for a weakly-acyclic set Σ: the size of the
// oblivious chase of Σ⁺ over the database extended with the query
// constants, doubled, with a floor of 64. Proposition 9 guarantees that
// every stable model's positive part is bounded by the size of an
// induced chase sequence of Σ⁺, which the oblivious chase dominates.
// For non-weakly-acyclic inputs the oblivious chase itself may not
// terminate; the internal budget then caps it and the returned bound is
// that cap.
func BudgetForStableSearch(db *logic.FactStore, rules []*logic.Rule, extraConsts []logic.Term, cap int) int {
	return BudgetForStableSearchCtx(context.Background(), db, rules, extraConsts, cap)
}

// BudgetForStableSearchCtx is BudgetForStableSearch with cancellation:
// when ctx is cancelled mid-probe the cap is returned, letting the
// caller's own context check abort promptly.
func BudgetForStableSearchCtx(ctx context.Context, db *logic.FactStore, rules []*logic.Rule, extraConsts []logic.Term, cap int) int {
	if cap <= 0 {
		cap = 1 << 14
	}
	positive := make([]*logic.Rule, 0, len(rules))
	for _, r := range rules {
		if r.IsConstraint() {
			continue
		}
		// Strip negation; merge disjuncts into one head (Σ⁺,∧), which
		// over-approximates every disjunct choice.
		pr := &logic.Rule{Label: r.Label + "+"}
		for _, l := range r.Body {
			if !l.Neg {
				pr.Body = append(pr.Body, l)
			}
		}
		var head []logic.Atom
		for _, d := range r.Heads {
			head = append(head, d...)
		}
		pr.Heads = [][]logic.Atom{head}
		positive = append(positive, pr)
	}
	// A copy-on-write snapshot: the budget probe must not write into the
	// caller's database, but deep-copying it per search was Clone's main
	// cost in the stable-model engine's setup path.
	ext := db.Snapshot()
	for i, c := range extraConsts {
		// Seed the domain with query constants via a throwaway
		// predicate so body homomorphisms cannot pick them up, but the
		// instance size accounting sees them.
		ext.Add(logic.A(fmt.Sprintf("$qconst%d", i), c))
	}
	res, err := RunCtx(ctx, ext, positive, Options{Variant: Oblivious, MaxAtoms: cap, NullPrefix: "b"})
	if err != nil {
		return cap
	}
	n := 2 * res.Instance.Len()
	if n < 64 {
		n = 64
	}
	if n > cap {
		n = cap
	}
	return n
}
