package chase_test

import (
	"errors"
	"testing"

	"ntgd/internal/chase"
	"ntgd/internal/logic"
	"ntgd/internal/parser"
)

func TestRestrictedChaseTerminatesOnWA(t *testing.T) {
	prog := parser.MustParse(`
person(alice).
person(X) -> hasFather(X,Y).
hasFather(X,Y) -> sameAs(Y,Y).
`)
	res, err := chase.Run(prog.Database(), prog.Rules, chase.Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Instance.Len() != 3 {
		t.Fatalf("chase size = %d, want 3: %s", res.Instance.Len(), res.Instance.CanonicalString())
	}
	if res.NullsInvented != 1 {
		t.Fatalf("nulls = %d, want 1", res.NullsInvented)
	}
}

func TestRestrictedVsObliviousSize(t *testing.T) {
	// hasFather(alice,bob) already satisfies the existential; the
	// restricted chase does nothing, the oblivious chase still fires.
	prog := parser.MustParse(`
person(alice). hasFather(alice,bob).
person(X) -> hasFather(X,Y).
`)
	restricted, err := chase.Run(prog.Database(), prog.Rules, chase.Options{})
	if err != nil {
		t.Fatalf("restricted: %v", err)
	}
	if restricted.Applications != 0 {
		t.Fatalf("restricted chase should not fire, fired %d", restricted.Applications)
	}
	obl, err := chase.Run(prog.Database(), prog.Rules, chase.Options{Variant: chase.Oblivious})
	if err != nil {
		t.Fatalf("oblivious: %v", err)
	}
	if obl.Applications != 1 || obl.Instance.Len() != 3 {
		t.Fatalf("oblivious chase should fire once: apps=%d size=%d", obl.Applications, obl.Instance.Len())
	}
}

func TestChaseBudgetOnNonTerminating(t *testing.T) {
	prog := parser.MustParse(`
node(a).
node(X) -> succ(X,Y).
succ(X,Y) -> node(Y).
`)
	_, err := chase.Run(prog.Database(), prog.Rules, chase.Options{MaxAtoms: 50})
	if !errors.Is(err, chase.ErrBudget) {
		t.Fatalf("expected ErrBudget, got %v", err)
	}
}

func TestChaseRejectsNTGDs(t *testing.T) {
	prog := parser.MustParse(`
p(a).
p(X), not q(X) -> r(X).
`)
	if _, err := chase.Run(prog.Database(), prog.Rules, chase.Options{}); err == nil {
		t.Fatalf("chase must reject rules with negation")
	}
}

func TestCertainBCQ(t *testing.T) {
	prog := parser.MustParse(`
emp(ann). mgr(ann, bob).
emp(X) -> dept(X, D).
mgr(X, Y) -> emp(Y).
?- dept(bob, D).
?- dept(ann, ann).
`)
	ok, err := chase.CertainBCQ(prog.Database(), prog.Rules, prog.Queries[0], chase.Options{})
	if err != nil {
		t.Fatalf("CertainBCQ: %v", err)
	}
	if !ok {
		t.Fatalf("bob is an employee, so bob has a department")
	}
	ok, err = chase.CertainBCQ(prog.Database(), prog.Rules, prog.Queries[1], chase.Options{})
	if err != nil {
		t.Fatalf("CertainBCQ: %v", err)
	}
	if ok {
		t.Fatalf("dept(ann,ann) is not certain")
	}
}

func TestCertainBCQRejectsNegation(t *testing.T) {
	prog := parser.MustParse(`
p(a).
p(X) -> q(X).
?- p(X), not q(X).
`)
	if _, err := chase.CertainBCQ(prog.Database(), prog.Rules, prog.Queries[0], chase.Options{}); err == nil {
		t.Fatalf("certain answering under TGDs is defined for positive queries")
	}
}

// TestChaseUniversality (property on a fixed family): the restricted
// chase maps homomorphically into every model of (D, Σ).
func TestChaseUniversality(t *testing.T) {
	prog := parser.MustParse(`
r(a,b).
r(X,Y) -> s(Y,Z).
s(X,Y) -> t(X).
`)
	res, err := chase.Run(prog.Database(), prog.Rules, chase.Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Build a model by hand (with constants as witnesses).
	model := logic.StoreOf(
		logic.A("r", logic.C("a"), logic.C("b")),
		logic.A("s", logic.C("b"), logic.C("w")),
		logic.A("t", logic.C("b")),
	)
	if !logic.IsModel(prog.Rules, model) {
		t.Fatalf("hand-built interpretation is not a model")
	}
	if !logic.MapsTo(res.Instance.Atoms(), model) {
		t.Fatalf("chase must map into every model (universality)")
	}
}

func TestBudgetForStableSearch(t *testing.T) {
	prog := parser.MustParse(`
person(alice).
person(X) -> hasFather(X,Y).
hasFather(X,Y) -> sameAs(Y,Y).
hasFather(X,Y), hasFather(X,Z), not sameAs(Y,Z) -> abnormal(X).
`)
	b := chase.BudgetForStableSearch(prog.Database(), prog.Rules, []logic.Term{logic.C("bob")}, 0)
	if b < 5 {
		t.Fatalf("budget %d too small to hold any stable model", b)
	}
	// Non-terminating Σ⁺ falls back to the cap.
	bad := parser.MustParse(`
node(a).
node(X) -> succ(X,Y).
succ(X,Y) -> node(Y).
`)
	b2 := chase.BudgetForStableSearch(bad.Database(), bad.Rules, nil, 512)
	if b2 != 512 {
		t.Fatalf("cap fallback = %d, want 512", b2)
	}
}
