package soformula_test

import (
	"strings"
	"testing"

	"ntgd/internal/logic"
	"ntgd/internal/parser"
	"ntgd/internal/soformula"
)

// section32 is the running program of Sections 3.2–3.3:
// D = {p(0)}, Σ = {p(X) ∧ ¬t(X) → r(X), r(X) → t(X)}.
const section32 = `
p(0).
p(X), not t(X) -> r(X).
r(X) -> t(X).
`

func TestTauTransform(t *testing.T) {
	prog := parser.MustParse(section32)
	tau := soformula.TauRule(prog.Rules[0])
	// Positive literal p(X) is starred; the negated t(X) is not — that
	// is the whole point of SM vs MM (Section 3.3).
	if tau.Body[0].Atom.Pred != "p*" {
		t.Fatalf("positive body literal should be starred: %v", tau.Body[0])
	}
	if tau.Body[1].Atom.Pred != "t" || !tau.Body[1].Neg {
		t.Fatalf("negative literal must stay on the original predicate: %v", tau.Body[1])
	}
	if tau.Heads[0][0].Pred != "r*" {
		t.Fatalf("head must be starred: %v", tau.Heads[0][0])
	}
}

func TestSMFormulaSection32(t *testing.T) {
	prog := parser.MustParse(section32)
	got := soformula.SM(prog.Database(), prog.Rules)
	// The formula must contain the original theory, the quantifier
	// block over the predicate variables, the strict-inclusion guard,
	// and — crucially — the mixed rule p*(X) ∧ ¬t(X) → r*(X).
	for _, frag := range []string{
		"p(0)",
		"p*(0)",
		"∃p*∃r*∃t*",
		"(p* ≤ p) ∧ (r* ≤ r) ∧ (t* ≤ t)",
		"p*(X) ∧ ¬t(X) → r*(X)", // negatives NOT starred
		"r*(X) → t*(X)",
	} {
		if !strings.Contains(got, frag) {
			t.Fatalf("SM[D,Σ] missing %q:\n%s", frag, got)
		}
	}
	if strings.Contains(got, "¬t*(X)") {
		t.Fatalf("SM[D,Σ] must not star negative literals:\n%s", got)
	}
}

func TestMMFormulaSection32(t *testing.T) {
	prog := parser.MustParse(section32)
	got := soformula.MM(prog.Database(), prog.Rules)
	// Circumscription stars everything, including the negation.
	if !strings.Contains(got, "p*(X) ∧ ¬t*(X) → r*(X)") {
		t.Fatalf("MM[D,Σ] must star negative literals too:\n%s", got)
	}
}

func TestUNA(t *testing.T) {
	db := logic.StoreOf(
		logic.A("p", logic.C("a")),
		logic.A("p", logic.C("b")),
		logic.A("p", logic.C("c")),
	)
	una := soformula.UNA(db)
	for _, frag := range []string{"¬(a = b)", "¬(a = c)", "¬(b = c)"} {
		if !strings.Contains(una, frag) {
			t.Fatalf("UNA missing %q: %s", frag, una)
		}
	}
	single := logic.StoreOf(logic.A("p", logic.C("a")))
	if soformula.UNA(single) != "⊤" {
		t.Fatalf("UNA over one constant is trivial")
	}
}

func TestRenderQuantifiers(t *testing.T) {
	prog := parser.MustParse(`person(alice). person(X) -> hasFather(X,Y).`)
	got := soformula.SM(prog.Database(), prog.Rules)
	if !strings.Contains(got, "∀X(person(X) → ∃Y hasFather(X,Y))") {
		t.Fatalf("existential rendering missing:\n%s", got)
	}
}
