// Package soformula materializes the second-order formulas at the
// heart of the paper's Section 3: MM[D,Σ] (circumscription — the
// minimal model characterization of Section 3.2) and SM[D,Σ] (the
// stable model characterization of Section 3.3, obtained from MM[D,Σ]
// by fixing the negated predicates to their original, non-starred
// versions via the τ_{p▷s} transformation, plus UNA[D]).
//
// The formulas are produced as structured, human-readable text. They
// are used by documentation, the CLI (`ntgdctl formula`), and golden
// tests; the semantic content of SM[D,Σ] is implemented operationally
// by internal/core.
package soformula

import (
	"fmt"
	"sort"
	"strings"

	"ntgd/internal/logic"
)

// starSuffix marks the second-order predicate variables s (rendered
// p*, t*, … as in the paper).
const starSuffix = "*"

// Tau applies the paper's τ_{p▷s} transformation to a literal: a
// positive literal p(t̄) becomes s(t̄) (starred); a negative literal
// ¬p(t̄) stays on the original predicate.
func Tau(l logic.Literal) logic.Literal {
	if l.Neg {
		return l
	}
	return logic.Pos(logic.Atom{Pred: l.Atom.Pred + starSuffix, Args: l.Atom.Args})
}

// TauRule applies τ_{p▷s} to every literal of a rule (head atoms are
// positive, hence starred).
func TauRule(r *logic.Rule) *logic.Rule {
	out := &logic.Rule{Label: r.Label + starSuffix}
	for _, l := range r.Body {
		out.Body = append(out.Body, Tau(l))
	}
	for _, d := range r.Heads {
		var nd []logic.Atom
		for _, a := range d {
			nd = append(nd, logic.Atom{Pred: a.Pred + starSuffix, Args: a.Args})
		}
		out.Heads = append(out.Heads, nd)
	}
	return out
}

// starAll stars every literal, including negative ones — the
// circumscription transform used by MM[D,Σ].
func starAll(r *logic.Rule) *logic.Rule {
	out := &logic.Rule{Label: r.Label + starSuffix}
	for _, l := range r.Body {
		out.Body = append(out.Body, logic.Literal{Neg: l.Neg, Atom: logic.Atom{Pred: l.Atom.Pred + starSuffix, Args: l.Atom.Args}})
	}
	for _, d := range r.Heads {
		var nd []logic.Atom
		for _, a := range d {
			nd = append(nd, logic.Atom{Pred: a.Pred + starSuffix, Args: a.Args})
		}
		out.Heads = append(out.Heads, nd)
	}
	return out
}

// UNA renders UNA[D] = ∧_{c≠d ∈ dom(D)} ¬(c = d).
func UNA(db *logic.FactStore) string {
	dom := db.Domain()
	var consts []string
	for _, t := range dom {
		if t.Kind == logic.Const {
			consts = append(consts, t.Name)
		}
	}
	sort.Strings(consts)
	if len(consts) < 2 {
		return "⊤"
	}
	var parts []string
	for i := 0; i < len(consts); i++ {
		for j := i + 1; j < len(consts); j++ {
			parts = append(parts, fmt.Sprintf("¬(%s = %s)", consts[i], consts[j]))
		}
	}
	return strings.Join(parts, " ∧ ")
}

func predList(db *logic.FactStore, rules []*logic.Rule) []string {
	set := map[string]bool{}
	for _, p := range db.Preds() {
		set[p] = true
	}
	for _, r := range rules {
		for p := range r.Preds() {
			set[p] = true
		}
	}
	out := make([]string, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

func renderDB(db *logic.FactStore, starred bool) string {
	atoms := db.Sorted()
	parts := make([]string, len(atoms))
	for i, a := range atoms {
		if starred {
			a = logic.Atom{Pred: a.Pred + starSuffix, Args: a.Args}
		}
		parts[i] = a.String()
	}
	if len(parts) == 0 {
		return "⊤"
	}
	return strings.Join(parts, " ∧ ")
}

func renderRules(rules []*logic.Rule) string {
	parts := make([]string, len(rules))
	for i, r := range rules {
		parts[i] = renderRule(r)
	}
	return strings.Join(parts, " ∧\n  ")
}

// renderRule prints a rule with explicit quantifiers, paper style.
func renderRule(r *logic.Rule) string {
	pb := r.PosBodyVars()
	bodyVars := sortedKeys(r.BodyVars())
	var b strings.Builder
	if len(bodyVars) > 0 {
		b.WriteString("∀")
		b.WriteString(strings.Join(bodyVars, "∀"))
	}
	b.WriteString("(")
	for i, l := range r.Body {
		if i > 0 {
			b.WriteString(" ∧ ")
		}
		if l.Neg {
			b.WriteString("¬")
		}
		b.WriteString(l.Atom.String())
	}
	if len(r.Body) == 0 {
		b.WriteString("⊤")
	}
	b.WriteString(" → ")
	if len(r.Heads) == 0 {
		b.WriteString("⊥")
	}
	for i, d := range r.Heads {
		if i > 0 {
			b.WriteString(" ∨ ")
		}
		var exist []string
		seen := map[string]bool{}
		var buf []string
		for _, a := range d {
			buf = a.Vars(buf[:0])
			for _, v := range buf {
				if !pb[v] && !seen[v] {
					seen[v] = true
					exist = append(exist, v)
				}
			}
		}
		if len(exist) > 0 {
			b.WriteString("∃")
			b.WriteString(strings.Join(exist, "∃"))
			b.WriteString(" ")
		}
		if len(d) > 1 {
			b.WriteString("(")
		}
		b.WriteString(logic.AtomsString(d))
		if len(d) > 1 {
			b.WriteString(")")
		}
	}
	b.WriteString(")")
	return b.String()
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// quantifierBlock renders ∃p*∃t*… for the predicate variables.
func quantifierBlock(preds []string) string {
	parts := make([]string, len(preds))
	for i, p := range preds {
		parts[i] = "∃" + p + starSuffix
	}
	return strings.Join(parts, "")
}

// lessThan renders (s < p): pointwise inclusion plus strictness.
func lessThan(preds []string) string {
	var incl []string
	for _, p := range preds {
		incl = append(incl, fmt.Sprintf("(%s%s ≤ %s)", p, starSuffix, p))
	}
	var back []string
	for _, p := range preds {
		back = append(back, fmt.Sprintf("(%s ≤ %s%s)", p, p, starSuffix))
	}
	return strings.Join(incl, " ∧ ") + " ∧ ¬(" + strings.Join(back, " ∧ ") + ")"
}

// MM renders the circumscription formula MM[D,Σ] of Section 3.2: the
// models of MM[D,Σ] are exactly the minimal models of D ∧ Σ.
func MM(db *logic.FactStore, rules []*logic.Rule) string {
	preds := predList(db, rules)
	starred := make([]*logic.Rule, len(rules))
	for i, r := range rules {
		starred[i] = starAll(r)
	}
	return fmt.Sprintf(`%s ∧
  %s ∧
¬%s(
  %s ∧
  %s ∧
  %s
)`,
		renderDB(db, false), renderRules(rules),
		quantifierBlock(preds),
		lessThan(preds),
		renderDB(db, true),
		renderRules(starred))
}

// SM renders the stable model formula SM[D,Σ] of Section 3.3:
// UNA[D] ∧ D ∧ Σ ∧ ¬∃s((s < p) ∧ τ_{p▷s}(D) ∧ τ_{p▷s}(Σ)). Its models
// are precisely the stable models of Definition 1, implemented
// operationally by internal/core.
func SM(db *logic.FactStore, rules []*logic.Rule) string {
	preds := predList(db, rules)
	tau := make([]*logic.Rule, len(rules))
	for i, r := range rules {
		tau[i] = TauRule(r)
	}
	return fmt.Sprintf(`%s ∧
%s ∧
  %s ∧
¬%s(
  %s ∧
  %s ∧
  %s
)`,
		UNA(db),
		renderDB(db, false), renderRules(rules),
		quantifierBlock(preds),
		lessThan(preds),
		renderDB(db, true),
		renderRules(tau))
}
