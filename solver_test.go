package ntgd_test

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"runtime"
	"sort"
	"testing"
	"time"

	"ntgd"
)

// collectModels drains a Solver's model stream, returning the models,
// the terminal error (nil when the stream completed), and the count.
func collectModels(ctx context.Context, s *ntgd.Solver) ([]*ntgd.FactStore, error) {
	var models []*ntgd.FactStore
	for m, err := range s.Models(ctx) {
		if err != nil {
			return models, err
		}
		models = append(models, m)
	}
	return models, nil
}

func canonicalSet(models []*ntgd.FactStore) []string {
	out := make([]string, len(models))
	for i, m := range models {
		out[i] = m.CanonicalString()
	}
	sort.Strings(out)
	return out
}

func equalStringSlices(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSolverMatchesLegacyWrappers pins the acceptance criterion: on
// every testdata program and every semantics, the deprecated one-shot
// wrappers and the compiled Solver produce identical models, verdicts,
// and errors — the wrappers are thin delegates, not a second code
// path.
func TestSolverMatchesLegacyWrappers(t *testing.T) {
	files, err := filepath.Glob("testdata/*.ntgd")
	if err != nil || len(files) == 0 {
		t.Fatalf("no testdata programs (err=%v)", err)
	}
	sems := []ntgd.Semantics{ntgd.SO, ntgd.LP, ntgd.Operational}
	opt := ntgd.Options{MaxModels: 16, MaxNodes: 200000}
	for _, f := range files {
		prog, err := ntgd.ParseFile(f)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		for _, sem := range sems {
			name := filepath.Base(f) + "/" + sem.String()
			t.Run(name, func(t *testing.T) {
				wres, werr := ntgd.StableModelsUnder(prog, sem, opt)
				s, cerr := ntgd.Compile(prog, ntgd.CompileOptions{Semantics: sem, Options: opt})
				if (cerr != nil) != (werr != nil && wres == nil) {
					t.Fatalf("compile err %v vs wrapper err %v", cerr, werr)
				}
				if cerr != nil {
					return
				}
				models, serr := collectModels(context.Background(), s)
				if !errors.Is(werr, serr) && !errors.Is(serr, werr) {
					t.Fatalf("wrapper err %v vs solver err %v", werr, serr)
				}
				if wres != nil && !equalStringSlices(canonicalSet(wres.Models), canonicalSet(models)) {
					t.Fatalf("model sets differ:\nwrapper: %v\nsolver:  %v",
						canonicalSet(wres.Models), canonicalSet(models))
				}
				for qi, q := range prog.Queries {
					for _, mode := range []ntgd.Mode{ntgd.Cautious, ntgd.Brave} {
						wv, werr := ntgd.EntailsUnder(prog, q, mode, sem, opt)
						sv, serr := s.Entails(context.Background(), q, mode)
						if (werr == nil) != (serr == nil) {
							t.Fatalf("q%d %s: wrapper err %v vs solver err %v", qi, mode, werr, serr)
						}
						if werr == nil && wv.Entailed != sv.Entailed {
							t.Fatalf("q%d %s: wrapper entailed=%v solver entailed=%v", qi, mode, wv.Entailed, sv.Entailed)
						}
					}
				}
			})
		}
	}
}

// TestSolverAnswersMatchesLegacy pins the n-ary answer path: the
// deprecated Answers wrapper and Solver.Answers agree, for every
// semantics (the wrapper previously supported SO only; now all three
// run through the shared engine).
func TestSolverAnswersMatchesLegacy(t *testing.T) {
	prog := ntgd.MustParse(`
person(ada). person(bo).
likes(ada, bo).
person(X), not grumpy(X) -> happy(X).
?-[X] happy(X).
`)
	q := prog.Queries[0]
	for _, sem := range []ntgd.Semantics{ntgd.SO, ntgd.LP, ntgd.Operational} {
		wTuples, wOK, wErr := ntgd.AnswersUnder(prog, q, ntgd.Cautious, sem, ntgd.Options{})
		s := ntgd.MustCompile(prog, ntgd.CompileOptions{Semantics: sem})
		sTuples, sOK, sErr := s.Answers(context.Background(), q, ntgd.Cautious)
		if (wErr == nil) != (sErr == nil) || wOK != sOK {
			t.Fatalf("%v: wrapper (ok=%v, err=%v) vs solver (ok=%v, err=%v)", sem, wOK, wErr, sOK, sErr)
		}
		if len(wTuples) != len(sTuples) {
			t.Fatalf("%v: wrapper %v vs solver %v", sem, wTuples, sTuples)
		}
		for i := range wTuples {
			if wTuples[i].Key() != sTuples[i].Key() {
				t.Fatalf("%v: tuple %d differs: %v vs %v", sem, i, wTuples[i], sTuples[i])
			}
		}
		if len(wTuples) != 2 {
			t.Fatalf("%v: want both persons happy, got %v", sem, wTuples)
		}
	}
}

// subsetProgram has 2^n stable models — enough search work that
// cancellation demonstrably lands mid-enumeration.
func subsetProgram(n int) *ntgd.Program {
	src := ""
	for i := 0; i < n; i++ {
		src += fmt.Sprintf("item(i%d).\n", i)
	}
	src += "item(X), not out(X) -> in(X).\nitem(X), not in(X) -> out(X).\n"
	return ntgd.MustParse(src)
}

// awaitGoroutines fails the test if the goroutine count stays above
// the baseline (the Solver machinery must not spawn anything that
// outlives a call).
func awaitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d > baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSolverCancellationMidSearch cancels the context after the first
// few models: the stream must end promptly with context.Canceled,
// report partial (strictly smaller) stats, leak no goroutines, and
// leave the Solver fully reusable for a complete second enumeration.
func TestSolverCancellationMidSearch(t *testing.T) {
	prog := subsetProgram(10) // 1024 models
	baseline := runtime.NumGoroutine()
	s := ntgd.MustCompile(prog, ntgd.CompileOptions{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	got := 0
	var terminal error
	for m, err := range s.Models(ctx) {
		if err != nil {
			terminal = err
			continue
		}
		if m == nil {
			t.Fatal("nil model without error")
		}
		got++
		if got == 3 {
			cancel()
		}
	}
	if !errors.Is(terminal, context.Canceled) {
		t.Fatalf("terminal error = %v, want context.Canceled", terminal)
	}
	if got < 3 || got >= 1024 {
		t.Fatalf("models before cancellation = %d, want a small prefix", got)
	}
	partial := s.Stats()
	if partial.Nodes <= 0 || partial.ModelsEmitted < int64(got) {
		t.Fatalf("partial stats not recorded: %+v", partial)
	}
	if !s.Exhausted() {
		t.Fatal("Exhausted() must report the cancelled run as incomplete")
	}
	// The solver (and its copy-on-write store chain) must be reusable.
	models, err := collectModels(context.Background(), s)
	if err != nil {
		t.Fatalf("second enumeration: %v", err)
	}
	if len(models) != 1024 {
		t.Fatalf("second enumeration found %d models, want 1024", len(models))
	}
	if s.Exhausted() {
		t.Fatal("complete second run must clear Exhausted()")
	}
	if total := s.Stats(); total.Nodes <= partial.Nodes {
		t.Fatalf("cumulative stats did not grow: %+v vs %+v", total, partial)
	}
	awaitGoroutines(t, baseline)
}

// TestSolverEarlyBreakReleasesSearch breaks out of the stream after
// one model: no error may be yielded, stats must reflect a partial
// run, no goroutines may linger, and the same Solver must then
// enumerate the full model set.
func TestSolverEarlyBreakReleasesSearch(t *testing.T) {
	prog := subsetProgram(8) // 256 models
	baseline := runtime.NumGoroutine()
	s := ntgd.MustCompile(prog, ntgd.CompileOptions{})
	for m, err := range s.Models(context.Background()) {
		if err != nil {
			t.Fatalf("unexpected error on early break: %v", err)
		}
		if m == nil {
			t.Fatal("nil model")
		}
		break
	}
	if st := s.Stats(); st.ModelsEmitted < 1 {
		t.Fatalf("stats not recorded after early break: %+v", st)
	}
	models, err := collectModels(context.Background(), s)
	if err != nil {
		t.Fatalf("full enumeration after break: %v", err)
	}
	if len(models) != 256 {
		t.Fatalf("full enumeration found %d models, want 256", len(models))
	}
	awaitGoroutines(t, baseline)
}

// TestSolverPreExpiredDeadline verifies the deadline path end to end:
// an already-expired context yields no models and exactly the
// DeadlineExceeded error, for every semantics.
func TestSolverPreExpiredDeadline(t *testing.T) {
	prog := subsetProgram(6)
	for _, sem := range []ntgd.Semantics{ntgd.SO, ntgd.LP, ntgd.Operational} {
		s := ntgd.MustCompile(prog, ntgd.CompileOptions{Semantics: sem})
		ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Hour))
		defer cancel()
		models, err := collectModels(ctx, s)
		if len(models) != 0 {
			t.Fatalf("%v: got %d models under an expired deadline", sem, len(models))
		}
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("%v: err = %v, want context.DeadlineExceeded", sem, err)
		}
		if !s.Exhausted() {
			t.Fatalf("%v: expired run must mark Exhausted", sem)
		}
		// The engine must still complete an unbounded run afterwards.
		models, err = collectModels(context.Background(), s)
		if err != nil || len(models) != 64 {
			t.Fatalf("%v: reuse after expiry: %d models, err=%v", sem, len(models), err)
		}
	}
}

// TestSolverEntailsCancellation pins cancellation on the query path:
// an expired deadline surfaces the context error from Entails with
// partial stats, and the verdict afterwards is unaffected.
func TestSolverEntailsCancellation(t *testing.T) {
	prog := ntgd.MustParse(`
person(alice).
person(X) -> hasFather(X,Y).
hasFather(X,Y) -> sameAs(Y,Y).
hasFather(X,Y), hasFather(X,Z), not sameAs(Y,Z) -> abnormal(X).
?- person(alice), not hasFather(alice,bob).
`)
	s := ntgd.MustCompile(prog, ntgd.CompileOptions{})
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := s.Entails(ctx, prog.Queries[0], ntgd.Cautious)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	v, err := s.Entails(context.Background(), prog.Queries[0], ntgd.Cautious)
	if err != nil || v.Entailed {
		t.Fatalf("after expiry the SO verdict must still be 'not entailed' (err=%v, entailed=%v)", err, v.Entailed)
	}
}

// TestSolverMaxModels verifies that Options.MaxModels bounds the
// stream without reporting an error.
func TestSolverMaxModels(t *testing.T) {
	prog := subsetProgram(6) // 64 models
	s := ntgd.MustCompile(prog, ntgd.CompileOptions{Options: ntgd.Options{MaxModels: 5}})
	models, err := collectModels(context.Background(), s)
	if err != nil {
		t.Fatalf("MaxModels stream errored: %v", err)
	}
	if len(models) != 5 {
		t.Fatalf("got %d models, want 5", len(models))
	}
}

// TestSolverParallelMatchesSequential pins the public ordering
// guarantee: Workers == 1 yields the deterministic sequential stream;
// any larger pool yields the same model set (the program is null-free,
// so canonical strings compare exactly).
func TestSolverParallelMatchesSequential(t *testing.T) {
	prog := subsetProgram(7) // 128 models
	seq := ntgd.MustCompile(prog, ntgd.CompileOptions{Options: ntgd.Options{Workers: 1}})
	seqModels, err := collectModels(context.Background(), seq)
	if err != nil {
		t.Fatalf("sequential enumeration: %v", err)
	}
	for _, w := range []int{2, 4} {
		par := ntgd.MustCompile(prog, ntgd.CompileOptions{Options: ntgd.Options{Workers: w}})
		parModels, err := collectModels(context.Background(), par)
		if err != nil {
			t.Fatalf("workers=%d enumeration: %v", w, err)
		}
		if !equalStringSlices(canonicalSet(seqModels), canonicalSet(parModels)) {
			t.Fatalf("workers=%d: model set diverges from sequential (%d vs %d models)",
				w, len(parModels), len(seqModels))
		}
	}
}

// TestSolverParallelCancellationMidSearch repeats the cancellation
// contract with a 4-worker pool: prompt termination with
// context.Canceled, partial stats, no leaked pool goroutines, and a
// fully reusable Solver.
func TestSolverParallelCancellationMidSearch(t *testing.T) {
	prog := subsetProgram(10) // 1024 models
	baseline := runtime.NumGoroutine()
	s := ntgd.MustCompile(prog, ntgd.CompileOptions{Options: ntgd.Options{Workers: 4}})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	got := 0
	var terminal error
	for m, err := range s.Models(ctx) {
		if err != nil {
			terminal = err
			continue
		}
		if m == nil {
			t.Fatal("nil model without error")
		}
		got++
		if got == 3 {
			cancel()
		}
	}
	if !errors.Is(terminal, context.Canceled) {
		t.Fatalf("terminal error = %v, want context.Canceled", terminal)
	}
	if got < 3 || got >= 1024 {
		t.Fatalf("models before cancellation = %d, want a small prefix", got)
	}
	if !s.Exhausted() {
		t.Fatal("Exhausted() must report the cancelled run as incomplete")
	}
	awaitGoroutines(t, baseline)
	models, err := collectModels(context.Background(), s)
	if err != nil {
		t.Fatalf("second enumeration: %v", err)
	}
	if len(models) != 1024 {
		t.Fatalf("second enumeration found %d models, want 1024", len(models))
	}
	awaitGoroutines(t, baseline)
}

// TestSolverParallelEarlyBreakReleasesSearch breaks out of a 4-worker
// stream after one model: the pool must wind down without an error or
// leaked goroutines, and the Solver must then enumerate the full set.
func TestSolverParallelEarlyBreakReleasesSearch(t *testing.T) {
	prog := subsetProgram(8) // 256 models
	baseline := runtime.NumGoroutine()
	s := ntgd.MustCompile(prog, ntgd.CompileOptions{Options: ntgd.Options{Workers: 4}})
	for m, err := range s.Models(context.Background()) {
		if err != nil {
			t.Fatalf("unexpected error on early break: %v", err)
		}
		if m == nil {
			t.Fatal("nil model")
		}
		break
	}
	awaitGoroutines(t, baseline)
	models, err := collectModels(context.Background(), s)
	if err != nil {
		t.Fatalf("full enumeration after break: %v", err)
	}
	if len(models) != 256 {
		t.Fatalf("full enumeration found %d models, want 256", len(models))
	}
	awaitGoroutines(t, baseline)
}

// TestLegacyLPOptionsRouted pins the satellite bug fix: under LP the
// wrappers must honor Options.MaxModels and report Stats/Exhausted
// instead of silently dropping them.
func TestLegacyLPOptionsRouted(t *testing.T) {
	prog := subsetProgram(5) // 32 models under every semantics
	res, err := ntgd.StableModelsUnder(prog, ntgd.LP, ntgd.Options{MaxModels: 2})
	if err != nil {
		t.Fatalf("StableModelsUnder(LP): %v", err)
	}
	if len(res.Models) != 2 {
		t.Fatalf("LP MaxModels ignored: got %d models, want 2", len(res.Models))
	}
	if res.Stats.Nodes == 0 {
		t.Fatal("LP result dropped Stats")
	}
	v, err := ntgd.EntailsUnder(prog, ntgd.MustParse("?- in(i0).").Queries[0], ntgd.Brave, ntgd.LP, ntgd.Options{})
	if err != nil {
		t.Fatalf("EntailsUnder(LP): %v", err)
	}
	if !v.Entailed || v.Witness == nil || v.Stats.Nodes == 0 {
		t.Fatalf("LP QAResult incomplete: %+v", v)
	}
}
